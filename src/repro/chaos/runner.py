"""The differential chaos oracle.

Runs each functional workload three times — once fault-free, twice under
the same chaos seed — with the online validator installed, and asserts
the three properties the chaos subsystem guarantees:

1. **Invariants hold**: every scheduled mid-simulation check passes
   (zero violations under any injected schedule).
2. **Functional equivalence**: the workload's output bytes are identical
   with and without injected faults — retries, aborts, evictions and
   remappings never change program-visible data.
3. **Determinism**: the two chaos runs of the same seed produce the same
   event trace (equal :func:`trace_digest`).

``python -m repro chaos`` drives this suite from the CLI.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.catalog import CHAOS_WORKLOADS
from repro.chaos.injector import ChaosInjector
from repro.chaos.schedule import ChaosConfig
from repro.chaos.validator import OnlineValidator
from repro.chaos.workloads import functional_fir, functional_mlp
from repro.cuda.device import GpuSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.instrument.trace import TraceConfig, Tracer
from repro.units import GB, MIB
from repro.workloads.functional import (
    functional_bfs,
    functional_hash_join,
    functional_kmeans,
    functional_knn,
    functional_radix_sort,
    functional_reduction,
    functional_stencil,
)


def trace_digest(runtime: CudaRuntime) -> str:
    """A sha256 fingerprint of one run's complete observable trace.

    Covers the simulated clock, the processed-event count, every counter,
    the traffic totals (per direction and per reason), the RMT tallies
    and — when enabled — every event-log entry and retained transfer
    record.  Two runs with equal digests took the same schedule.
    """
    h = hashlib.sha256()

    def put(*parts: object) -> None:
        for part in parts:
            h.update(repr(part).encode())
            h.update(b"\x00")

    put("now", runtime.env.now, "events", runtime.env.event_count)
    put("counters", sorted(runtime.driver.counters.as_dict().items()))
    traffic = runtime.driver.traffic
    put(
        "traffic",
        traffic.bytes_h2d,
        traffic.bytes_d2h,
        traffic.bytes_d2d,
        traffic.transfer_count,
        traffic.block_bytes,
        sorted(traffic._by_reason.items()),
    )
    rmt = runtime.driver.rmt
    put("rmt", rmt.useful_bytes, rmt.redundant_bytes, rmt.pending_bytes)
    for record in traffic.records:
        put(
            record.time,
            record.direction.value,
            record.nbytes,
            record.reason.value,
            record.first_block,
            record.num_blocks,
        )
    for entry in runtime.driver.log.entries():
        put(entry.time, entry.category, entry.message)
    return h.hexdigest()


def _chaos_gpu(memory_mib: int) -> GpuSpec:
    return GpuSpec(
        name="gpu0",
        memory_bytes=memory_mib * MIB,
        effective_flops=1e12,
        local_bandwidth=500 * GB,
        zero_bandwidth=500 * GB,
        model=f"chaos-gpu-{memory_mib}MiB",
    )


def _make_runtime(memory_mib: int) -> CudaRuntime:
    config = UvmDriverConfig(
        keep_transfer_records=True,
        event_log_enabled=True,
        event_log_capacity=None,
    )
    return CudaRuntime(gpu=_chaos_gpu(memory_mib), driver_config=config)


def _build_program(
    name: str, seed: int
) -> Tuple[Callable, Dict[str, bytes], int]:
    """Workload program factory: (program, output-capture dict, GPU MiB).

    Input data is drawn from a ``(seed, workload)``-keyed NumPy generator
    so the fault-free and chaos runs of one seed see identical inputs.
    """
    index = CHAOS_WORKLOADS.index(name)
    rng = np.random.default_rng([seed, index])
    out: Dict[str, bytes] = {}
    if name == "fir":
        # 16 MiB signal + delay line + output on a 24 MiB GPU: the
        # delay-line build and tap reduction stream through eviction.
        signal = rng.standard_normal(1 << 21)
        taps = rng.standard_normal(31)

        def program(cuda: CudaRuntime):
            result = yield from functional_fir(cuda, signal, taps)
            out["bytes"] = result.tobytes()

        return program, out, 24
    if name == "radix":
        # Two 16 MiB ping-pong buffers on a 24 MiB GPU (§7.3's shape).
        keys = rng.integers(0, 1 << 32, size=1 << 22, dtype=np.uint32)

        def program(cuda: CudaRuntime):
            result = yield from functional_radix_sort(cuda, keys)
            out["bytes"] = result.tobytes()

        return program, out, 24
    if name == "hashjoin":
        # ~20 MiB of tables + scratch on a 12 MiB GPU.
        n = 1 << 19
        left_keys = rng.permutation(np.arange(2 * n, dtype=np.int64))[:n]
        left_vals = rng.integers(0, 1 << 30, size=n, dtype=np.int64)
        right_keys = rng.integers(0, 2 * n, size=n, dtype=np.int64)
        right_vals = rng.integers(0, 1 << 30, size=n, dtype=np.int64)

        def program(cuda: CudaRuntime):
            result = yield from functional_hash_join(
                cuda, left_keys, left_vals, right_keys, right_vals
            )
            out["bytes"] = b"".join(a.tobytes() for a in result)

        return program, out, 12
    if name == "mlp":
        # ~32 MiB of weights + activations on a 20 MiB GPU.
        x = rng.standard_normal((1024, 1024))
        w1 = rng.standard_normal((1024, 1024)) / 32.0
        w2 = rng.standard_normal((1024, 512)) / 32.0

        def program(cuda: CudaRuntime):
            result = yield from functional_mlp(cuda, x, w1, w2, iterations=3)
            out["bytes"] = result.tobytes()

        return program, out, 20
    if name == "bfs":
        # ~11.5 MiB of CSR graph + frontiers on an 8 MiB GPU; the
        # per-level frontier ping-pong churns through eviction.
        num_nodes, degree = 1 << 17, 8
        indptr = np.arange(0, num_nodes * degree + 1, degree, dtype=np.int64)
        indices = rng.integers(0, num_nodes, size=num_nodes * degree).astype(
            np.int64
        )

        def program(cuda: CudaRuntime):
            result = yield from functional_bfs(cuda, indptr, indices, source=0)
            out["bytes"] = result.tobytes()

        return program, out, 8
    if name == "kmeans":
        # 8 MiB of points + assignments + scratch on an 8 MiB GPU.
        points = rng.standard_normal((1 << 18, 4))
        centroids = points[:8].copy()

        def program(cuda: CudaRuntime):
            cent, assign = yield from functional_kmeans(
                cuda, points, centroids, iterations=3
            )
            out["bytes"] = cent.tobytes() + assign.tobytes()

        return program, out, 8
    if name == "knn":
        # A 16 MiB distance scratch dominates a 10 MiB GPU; each batch
        # rebuilds and discards it.
        refs = rng.standard_normal((4096, 4))
        queries = rng.standard_normal((2048, 4))

        def program(cuda: CudaRuntime):
            result = yield from functional_knn(
                cuda, refs, queries, k=8, batches=4
            )
            out["bytes"] = result.tobytes()

        return program, out, 10
    if name == "stencil":
        # Two 8 MiB ping-pong grids on a 10 MiB GPU.
        grid = rng.standard_normal((1024, 1024))

        def program(cuda: CudaRuntime):
            result = yield from functional_stencil(cuda, grid, iterations=3)
            out["bytes"] = result.tobytes()

        return program, out, 10
    if name == "reduction":
        # 16 MiB of values + 2 MiB scratch on a 12 MiB GPU.
        values = rng.standard_normal(1 << 21)

        def program(cuda: CudaRuntime):
            result = yield from functional_reduction(cuda, values, fanin=8)
            out["bytes"] = result.tobytes()

        return program, out, 12
    raise ValueError(
        f"unknown chaos workload {name!r}; expected one of {CHAOS_WORKLOADS}"
    )


@dataclass
class ChaosWorkloadResult:
    """Per-workload verdict of the differential oracle."""

    workload: str
    outputs_match: bool
    trace_reproducible: bool
    violations: int
    checks: int
    injected_actions: int
    fault_free_digest: str
    chaos_digest: str
    chaos_repeat_digest: str
    fault_free_seconds: float
    chaos_seconds: float
    counters: Dict[str, int] = field(default_factory=dict)
    #: EventLog entries dropped by the ring buffer during the chaos run.
    log_dropped: int = 0
    #: Timeline digests of the two chaos runs when tracing was requested
    #: (empty otherwise); equality is folded into ``trace_reproducible``.
    chaos_trace_digest: str = ""
    repeat_trace_digest: str = ""
    #: The first chaos run's tracer, kept for ``--trace`` export.
    chaos_tracer: Optional[Tracer] = field(
        default=None, repr=False, compare=False
    )

    @property
    def ok(self) -> bool:
        return (
            self.outputs_match
            and self.trace_reproducible
            and self.violations == 0
        )


@dataclass
class ChaosRunReport:
    """Suite-level result of one ``run_chaos_suite`` invocation."""

    seed: int
    cadence: int
    results: List[ChaosWorkloadResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def summary_lines(self) -> List[str]:
        lines = [
            f"chaos suite: seed={self.seed} cadence={self.cadence} "
            f"{'PASS' if self.ok else 'FAIL'}",
            f"{'workload':<10} {'output':<8} {'trace':<8} "
            f"{'violations':<11} {'checks':<7} {'injections':<11} "
            f"{'log-drop':<8}",
        ]
        for r in self.results:
            lines.append(
                f"{r.workload:<10} "
                f"{'match' if r.outputs_match else 'DIFFER':<8} "
                f"{'stable' if r.trace_reproducible else 'DRIFT':<8} "
                f"{r.violations:<11} {r.checks:<7} {r.injected_actions:<11} "
                f"{r.log_dropped:<8}"
            )
        return lines


def _run_once(
    name: str,
    seed: int,
    memory_mib: int,
    chaos: Optional[ChaosConfig],
    cadence: int,
    strict: bool,
    trace_config: Optional[TraceConfig] = None,
) -> Tuple[
    bytes, str, float, OnlineValidator, int, Dict[str, int],
    Optional[Tracer], int,
]:
    program, out, _default_mib = _build_program(name, seed)
    runtime = _make_runtime(memory_mib)
    tracer: Optional[Tracer] = None
    if trace_config is not None and trace_config.enabled:
        tracer = Tracer(trace_config)
        tracer.install(runtime)
    validator = OnlineValidator(
        runtime.driver, cadence=cadence, strict=strict
    ).install(runtime.env)
    injector: Optional[ChaosInjector] = None
    if chaos is not None:
        injector = ChaosInjector(chaos).install(runtime)
    try:
        elapsed = runtime.run(program)
        if injector is not None:
            # Quiesce first: uninstall drains any injected process (spike
            # reservation, ECC retirement) still mid-eviction, so the
            # closing check below sees a settled driver.
            injector.uninstall()
        # One final quiescent check closes the run: at this point the
        # strict (no-slack) contract applies again.
        validator.check_now(allow_inflight=False)
    finally:
        validator.uninstall()
        if injector is not None:
            injector.uninstall()
        if tracer is not None:
            tracer.uninstall()
    digest = trace_digest(runtime)
    actions = len(injector.actions) if injector is not None else 0
    counters = {
        name: count
        for name, count in runtime.driver.counters.items()
        if name.startswith(("transfer_", "ecc_", "fault_"))
        or name in ("kernel_aborts", "link_degradations", "pressure_spikes",
                    "invariant_checks")
    }
    return (
        out["bytes"], digest, elapsed, validator, actions, counters,
        tracer, runtime.driver.log.dropped,
    )


def run_chaos_suite(
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
    cadence: int = 32,
    config: Optional[ChaosConfig] = None,
    strict: bool = False,
    memory_mib: Optional[int] = None,
    trace_config: Optional[TraceConfig] = None,
) -> ChaosRunReport:
    """Run the differential chaos oracle over ``workloads``.

    ``strict=False`` (default) records violations instead of aborting the
    simulation mid-flight, so one report covers every workload; tests use
    ``strict=True`` to fail fast.

    ``trace_config`` additionally traces the two chaos runs of each
    workload (the fault-free reference stays untraced) and folds
    timeline-digest equality into ``trace_reproducible``.
    """
    chaos = config or ChaosConfig.default_storm(seed=seed)
    chaos.validate()
    report = ChaosRunReport(seed=seed, cadence=cadence)
    for name in workloads or CHAOS_WORKLOADS:
        _program, _out, default_mib = _build_program(name, seed)
        mib = memory_mib if memory_mib is not None else default_mib
        free_bytes, free_digest, free_elapsed, _v, _a, _c, _t, _d = _run_once(
            name, seed, mib, None, cadence, strict
        )
        (
            chaos_bytes, chaos_digest, chaos_elapsed,
            validator, actions, counters, chaos_tracer, log_dropped,
        ) = _run_once(
            name, seed, mib, chaos, cadence, strict, trace_config
        )
        (
            _repeat_bytes, repeat_digest, _e, _v2, _a2, _c2,
            repeat_tracer, _d2,
        ) = _run_once(
            name, seed, mib, chaos, cadence, strict, trace_config
        )
        chaos_td = chaos_tracer.digest() if chaos_tracer is not None else ""
        repeat_td = repeat_tracer.digest() if repeat_tracer is not None else ""
        report.results.append(
            ChaosWorkloadResult(
                workload=name,
                outputs_match=free_bytes == chaos_bytes,
                trace_reproducible=(
                    chaos_digest == repeat_digest and chaos_td == repeat_td
                ),
                violations=len(validator.violations),
                checks=validator.checks,
                injected_actions=actions,
                fault_free_digest=free_digest,
                chaos_digest=chaos_digest,
                chaos_repeat_digest=repeat_digest,
                fault_free_seconds=free_elapsed,
                chaos_seconds=chaos_elapsed,
                counters=counters,
                log_dropped=log_dropped,
                chaos_trace_digest=chaos_td,
                repeat_trace_digest=repeat_td,
                chaos_tracer=chaos_tracer,
            )
        )
    return report
