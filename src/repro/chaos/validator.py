"""Online invariant validation: the mid-simulation checker.

Promotes :func:`repro.harness.validation.check_driver_invariants` from a
quiescent-only library call into an engine-scheduled checker: an
:class:`OnlineValidator` is an engine *monitor* (not a process), so it
runs between two events without touching the event heap — a validated
run produces exactly the same event trace as an unvalidated one.

Checks run every ``cadence`` engine events with ``allow_inflight=True``
(mid-flight residency operations are tolerated, see
:func:`repro.harness.validation.collect_invariant_problems`) plus the
transfer-byte conservation invariants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import InvariantViolationError
from repro.harness.validation import (
    collect_conservation_problems,
    collect_invariant_problems,
)
from repro.instrument.counters import Counters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.driver.driver import UvmDriver
    from repro.engine.core import Environment


class OnlineValidator:
    """Scheduled mid-simulation invariant checking for one driver."""

    def __init__(
        self,
        driver: "UvmDriver",
        cadence: int = 256,
        strict: bool = True,
        conservation: bool = True,
    ) -> None:
        if cadence < 1:
            raise ValueError(f"cadence must be >= 1, got {cadence}")
        self.driver = driver
        self.cadence = cadence
        #: Raise :class:`~repro.errors.InvariantViolationError` at the
        #: first violation (``True``) or record and continue (``False``).
        self.strict = strict
        self.conservation = conservation
        self.checks = 0
        #: ``(event_count, problems)`` for every failed check.
        self.violations: List[Tuple[int, List[str]]] = []
        self._env: Optional["Environment"] = None
        self._next = 0

    def install(self, env: "Environment") -> "OnlineValidator":
        if self._env is not None:
            raise RuntimeError("OnlineValidator is already installed")
        self._env = env
        self._next = env.event_count + self.cadence
        env.add_monitor(self._on_event)
        return self

    def uninstall(self) -> None:
        if self._env is None:
            return
        self._env.remove_monitor(self._on_event)
        self._env = None

    def check_now(self, allow_inflight: bool = True) -> List[str]:
        """Run one check immediately; returns (and records) any problems."""
        driver = self.driver
        problems = collect_invariant_problems(
            driver.inspect(), allow_inflight=allow_inflight
        )
        if self.conservation:
            problems.extend(collect_conservation_problems(driver))
        self.checks += 1
        driver.counters.bump(Counters.INVARIANT_CHECKS)
        if problems:
            count = self._env.event_count if self._env is not None else -1
            self.violations.append((count, problems))
            if self.strict:
                raise InvariantViolationError(
                    f"online validation failed at event {count}:\n  "
                    + "\n  ".join(problems)
                )
        return problems

    def _on_event(self, env: "Environment", count: int) -> None:
        if count < self._next:
            return
        self._next = count + self.cadence
        self.check_now(allow_inflight=True)
