"""Functional workloads for the differential chaos oracle.

Two additions to :mod:`repro.workloads.functional`, chosen so the chaos
suite covers the paper's workload families: an FIR filter (the streaming
DSP shape) and a small two-layer MLP forward pass (the "one DL network"
of the acceptance suite).  Both follow the functional-mode conventions:
managed buffers carry NumPy arrays, kernel bodies compute real results
once at launch completion, and every intermediate that dies is discarded
so the chaos schedule exercises the discard machinery under fire.

All arithmetic uses fixed-order NumPy expressions, so outputs are
byte-identical across runs of the same inputs — the property the
differential oracle asserts under any injected fault schedule.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.access import AccessMode
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime


def functional_fir(
    cuda: CudaRuntime,
    signal: np.ndarray,
    taps: np.ndarray,
    discard: Optional[str] = "eager",
) -> Generator:
    """FIR-filter ``signal`` with ``taps`` on the simulated GPU.

    Stage 1 builds a zero-padded delay line in a scratch buffer; stage 2
    reduces it against the taps.  The delay line is dead after stage 2 —
    the discardable intermediate.  Returns the filtered signal.
    """
    work = signal.copy()
    k = int(taps.size)
    if k < 1:
        raise ValueError("FIR needs at least one tap")
    sig = cuda.malloc_managed(work.nbytes, "fir_signal", array=work)
    tap_arr = taps.copy()
    tap = cuda.malloc_managed(tap_arr.nbytes, "fir_taps", array=tap_arr)
    padded = np.zeros(work.size + k - 1, dtype=work.dtype)
    pad = cuda.malloc_managed(padded.nbytes, "fir_delay_line", array=padded)
    out_arr = np.zeros_like(work)
    out = cuda.malloc_managed(out_arr.nbytes, "fir_out", array=out_arr)
    yield from cuda.host_write(sig)
    yield from cuda.host_write(tap)
    cuda.prefetch_async(sig)
    cuda.prefetch_async(tap)

    def build_delay_line():
        pad.array[:] = 0
        pad.array[k - 1 :] = sig.array

    cuda.launch(
        KernelSpec(
            "fir_pad",
            [
                BufferAccess(sig, AccessMode.READ),
                BufferAccess(pad, AccessMode.WRITE),
            ],
            flops=float(work.size),
            fn=build_delay_line,
        )
    )

    def apply_taps():
        n = sig.array.size
        acc = np.zeros(n, dtype=np.float64)
        for j in range(k):
            start = k - 1 - j
            acc += np.float64(tap.array[j]) * pad.array[start : start + n]
        out.array[:] = acc.astype(out.array.dtype)

    cuda.launch(
        KernelSpec(
            "fir_taps",
            [
                BufferAccess(pad, AccessMode.READ),
                BufferAccess(tap, AccessMode.READ),
                BufferAccess(out, AccessMode.WRITE),
            ],
            flops=float(2 * work.size * k),
            waves=4,
            fn=apply_taps,
        )
    )
    if discard is not None:
        # The delay line is dead once the reduction consumed it.
        cuda.discard_async(pad, mode=discard)
    yield from cuda.synchronize()
    yield from cuda.host_read(out)
    yield from cuda.synchronize()
    return out.array.copy()


def functional_mlp(
    cuda: CudaRuntime,
    inputs: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
    iterations: int = 2,
    discard: Optional[str] = "eager",
) -> Generator:
    """Forward passes of a two-layer MLP (ReLU hidden layer).

    Each iteration computes ``relu(inputs @ w1) @ w2``; the hidden
    activation buffer is dead after the second layer consumes it and is
    discarded per iteration — the §6 DL-framework integration pattern
    (activations freed between forward passes).  Returns the final
    output matrix.
    """
    if inputs.shape[1] != w1.shape[0] or w1.shape[1] != w2.shape[0]:
        raise ValueError(
            f"shape mismatch: {inputs.shape} @ {w1.shape} @ {w2.shape}"
        )
    x = cuda.malloc_managed(inputs.nbytes, "mlp_inputs", array=inputs.copy())
    w1_buf = cuda.malloc_managed(w1.nbytes, "mlp_w1", array=w1.copy())
    w2_buf = cuda.malloc_managed(w2.nbytes, "mlp_w2", array=w2.copy())
    hidden = np.zeros((inputs.shape[0], w1.shape[1]), dtype=np.float64)
    hid = cuda.malloc_managed(hidden.nbytes, "mlp_hidden", array=hidden)
    out_arr = np.zeros((inputs.shape[0], w2.shape[1]), dtype=np.float64)
    out = cuda.malloc_managed(out_arr.nbytes, "mlp_out", array=out_arr)
    yield from cuda.host_write(x)
    yield from cuda.host_write(w1_buf)
    yield from cuda.host_write(w2_buf)
    cuda.prefetch_async(x)
    cuda.prefetch_async(w1_buf)
    cuda.prefetch_async(w2_buf)

    flops_l1 = float(2 * inputs.shape[0] * w1.shape[0] * w1.shape[1])
    flops_l2 = float(2 * inputs.shape[0] * w2.shape[0] * w2.shape[1])
    for iteration in range(iterations):

        def layer1():
            hid.array[:] = np.maximum(x.array @ w1_buf.array, 0.0)

        cuda.launch(
            KernelSpec(
                f"mlp_layer1_{iteration}",
                [
                    BufferAccess(x, AccessMode.READ),
                    BufferAccess(w1_buf, AccessMode.READ),
                    BufferAccess(hid, AccessMode.WRITE),
                ],
                flops=flops_l1,
                waves=4,
                fn=layer1,
            )
        )

        def layer2():
            out.array[:] = hid.array @ w2_buf.array

        cuda.launch(
            KernelSpec(
                f"mlp_layer2_{iteration}",
                [
                    BufferAccess(hid, AccessMode.READ),
                    BufferAccess(w2_buf, AccessMode.READ),
                    BufferAccess(out, AccessMode.WRITE),
                ],
                flops=flops_l2,
                waves=4,
                fn=layer2,
            )
        )
        if discard is not None:
            # Activations die with the layer that consumed them (§6).
            cuda.discard_async(hid, mode=discard)
            if iteration + 1 < iterations:
                # Lazy discard requires the prefetch notification before
                # the next iteration re-purposes the buffer (§5.2).
                cuda.prefetch_async(hid)
    yield from cuda.synchronize()
    yield from cuda.host_read(out)
    yield from cuda.synchronize()
    return out.array.copy()
