"""The deterministic fault injector.

One :class:`ChaosInjector` hooks an environment's event loop (via
:meth:`repro.engine.core.Environment.add_monitor`) and the UVM driver's
fault-servicing and kernel-execution paths, and fires the fault
mechanisms its :class:`~repro.chaos.schedule.ChaosConfig` enables.

Determinism
-----------
Every mechanism owns a dedicated ``random.Random(f"{seed}:{tag}")``
stream, and every draw happens at a point that is itself deterministic —
either at a monitor firing (ordered by the engine's event count) or
inside a driver/executor hook (ordered by the simulation).  Injections
add events and therefore shift *later* event counts, but they do so
identically on every run of the same seed, so the whole schedule — and
the resulting simulation trace — is exactly reproducible.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.chaos.schedule import ChaosConfig
from repro.instrument.counters import Counters
from repro.units import BIG_PAGE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.kernel import KernelSpec
    from repro.cuda.runtime import CudaRuntime
    from repro.driver.driver import UvmDriver
    from repro.driver.va_block import VaBlock
    from repro.engine.core import Environment
    from repro.gpu.executor import GpuExecutor


def _stream(seed: int, tag: str) -> random.Random:
    """A mechanism-private random stream, stable across processes."""
    return random.Random(f"{seed}:{tag}")


class _Periodic:
    """Event-count scheduler for one mechanism: mean-interval firings."""

    __slots__ = ("rng", "interval", "next_fire")

    def __init__(self, seed: int, tag: str, interval: int) -> None:
        self.rng = _stream(seed, tag)
        self.interval = interval
        self.next_fire = 0
        if interval:
            self._advance(0)

    def _advance(self, count: int) -> None:
        # Uniform in [1, 2*interval): mean ~= interval, never zero.
        self.next_fire = count + self.rng.randrange(1, 2 * self.interval)

    def due(self, count: int) -> bool:
        if not self.interval or count < self.next_fire:
            return False
        self._advance(count)
        return True


class ChaosInjector:
    """Seed-driven fault injection over one runtime.

    Usage::

        injector = ChaosInjector(ChaosConfig.default_storm(seed=7))
        injector.install(runtime)
        runtime.run(program)
        injector.uninstall()

    The injector must be installed *after* any snapshot/fork: snapshots
    are taken chaos-free, and each forked body installs its own injector
    so chaos never leaks into a shared setup prefix.
    """

    def __init__(self, config: ChaosConfig) -> None:
        config.validate()
        self.config = config
        seed = config.seed
        self._degrade = _Periodic(seed, "degrade", config.link_degrade_interval)
        self._transfer = _Periodic(
            seed, "transfer", config.transfer_fault_interval
        )
        self._ecc = _Periodic(seed, "ecc", config.ecc_retire_interval)
        self._storm = _Periodic(seed, "storm", config.replay_storm_interval)
        self._spike = _Periodic(seed, "spike", config.pressure_spike_interval)
        self._reorder_rng = _stream(seed, "reorder")
        self._abort_rng = _stream(seed, "abort")
        self._gpu_rng = _stream(seed, "gpu")
        #: ``(event_count, action)`` trail of every injection, for tests
        #: and reproducibility assertions.
        self.actions: List[Tuple[int, str]] = []
        self._runtime: Optional["CudaRuntime"] = None
        self._driver: Optional["UvmDriver"] = None
        self._env: Optional["Environment"] = None
        self._restore_link_at = 0
        self._unspike: List[Tuple[int, str, int]] = []
        self._storm_armed = False
        self._ecc_budget = 0
        self._current_kernel: Optional["KernelSpec"] = None
        self._aborts_left = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def install(self, runtime: "CudaRuntime") -> "ChaosInjector":
        """Attach to ``runtime``: engine monitor plus driver hook."""
        if self._runtime is not None:
            raise RuntimeError("ChaosInjector is already installed")
        self._runtime = runtime
        self._driver = runtime.driver
        self._env = runtime.env
        caps = [
            runtime.driver.inspect().gpus[name].capacity_frames
            for name in runtime.driver.gpu_names()
        ]
        self._ecc_budget = int(
            sum(caps) * self.config.ecc_max_retired_fraction
        )
        # Bound per-command fault consumption below the retry budget:
        # faults armed while a command is already mid-retry must not push
        # it past ``max_retries`` — chaos exercises the retry path, it
        # never makes a transfer fail outright.
        runtime.link.fault_consumption_limit = max(
            1, runtime.driver.migration.max_retries - 1
        )
        runtime.driver.chaos = self
        runtime.env.add_monitor(self._on_event)
        return self

    def uninstall(self) -> None:
        """Detach and quiesce: leftover injected processes are drained,
        the link is restored, and pending spikes are released."""
        if self._runtime is None:
            return
        self._env.remove_monitor(self._on_event)  # type: ignore[union-attr]
        # A spike reservation or ECC retirement can still be mid-eviction
        # when the program finishes; drain the event heap so the driver
        # is quiescent before any final strict invariant check.  With the
        # monitor removed no new injections arise, so the drain is finite
        # (and deterministic — both runs of a seed drain identically).
        try:
            self._env.run()  # type: ignore[union-attr]
        except Exception:
            pass  # teardown after a crashed run: best effort only
        if self._driver is not None and self._driver.chaos is self:
            self._driver.chaos = None
        link = self._runtime.link
        link.fault_consumption_limit = None
        if link.degraded:
            link.restore()
        for _count, gpu, frames in self._unspike:
            self._driver.release_gpu_memory(  # type: ignore[union-attr]
                gpu, frames * BIG_PAGE
            )
        self._unspike.clear()
        self._runtime = None
        self._driver = None
        self._env = None

    def _record(self, count: int, action: str) -> None:
        """Append to the action trail and, when tracing, mark an instant.

        The trace instant shares the action's label, so a Perfetto view
        of the ``chaos`` track reads exactly like :attr:`actions`.
        """
        self.actions.append((count, action))
        driver = self._driver
        if driver is not None:
            tracer = driver.tracer
            if tracer.enabled:
                tracer.instant(
                    "chaos",
                    action,
                    driver.env.now,
                    category="chaos",
                    args={"event_count": count},
                )

    # ------------------------------------------------------------------
    # the engine monitor
    # ------------------------------------------------------------------

    def _on_event(self, env: "Environment", count: int) -> None:
        if self._restore_link_at and count >= self._restore_link_at:
            self._restore_link_at = 0
            self._runtime.link.restore()  # type: ignore[union-attr]
            self._record(count, "link_restore")
        if self._unspike:
            still_held = []
            for due, gpu, frames in self._unspike:
                if count >= due:
                    self._driver.release_gpu_memory(  # type: ignore[union-attr]
                        gpu, frames * BIG_PAGE
                    )
                    self._record(count, f"unspike:{gpu}:{frames}")
                else:
                    still_held.append((due, gpu, frames))
            self._unspike = still_held
        if self._degrade.due(count):
            self._fire_degrade(count)
        if self._transfer.due(count):
            link = self._runtime.link  # type: ignore[union-attr]
            # Cap the backlog below the migration engine's retry budget:
            # chaos exercises the retry path, it never makes a transfer
            # fail outright.
            retries = self._driver.migration.max_retries  # type: ignore[union-attr]
            if link.armed_faults < max(1, retries - 1):
                link.inject_transfer_fault()
                self._record(count, "transfer_fault")
        if self._ecc.due(count):
            self._fire_ecc(count)
        if self._storm.due(count):
            self._storm_armed = True
            self._record(count, "storm_armed")
        if self._spike.due(count):
            self._fire_spike(count)

    def _fire_degrade(self, count: int) -> None:
        link = self._runtime.link  # type: ignore[union-attr]
        rng = self._degrade.rng
        factor = rng.uniform(
            self.config.link_degrade_factor_min,
            self.config.link_degrade_factor_max,
        )
        link.degrade(factor, extra_latency=self.config.link_degrade_extra_latency)
        self._restore_link_at = count + self.config.link_degrade_duration
        driver = self._driver
        if driver is not None:
            driver.counters.bump(Counters.LINK_DEGRADATIONS)
        self._record(count, f"link_degrade:{factor:.3f}")

    def _pick_gpu(self) -> Optional[str]:
        names = self._driver.gpu_names()  # type: ignore[union-attr]
        if not names:
            return None
        if len(names) == 1:
            return names[0]
        return self._gpu_rng.choice(names)

    def _fire_ecc(self, count: int) -> None:
        driver = self._driver
        if driver is None or self._ecc_budget <= 0:
            return
        gpu = self._pick_gpu()
        if gpu is None:
            return
        view = driver.inspect().gpus[gpu]
        # Never retire a frame the driver cannot vacate: require either a
        # free frame or at least one evictable queue entry, and keep a
        # healthy floor of capacity.
        evictable = (
            view.free_frames
            + view.unused_queue_frames
            + len(view.used_queue_blocks)
            + len(view.discarded_queue_blocks)
        )
        if evictable == 0 or view.capacity_frames <= 8:
            return
        self._ecc_budget -= 1
        self._env.process(driver.retire_frames(gpu, 1))  # type: ignore[union-attr]
        self._record(count, f"ecc_retire:{gpu}")

    def _fire_spike(self, count: int) -> None:
        driver = self._driver
        if driver is None:
            return
        gpu = self._pick_gpu()
        if gpu is None:
            return
        view = driver.inspect().gpus[gpu]
        frames = min(
            self.config.pressure_spike_frames,
            max(0, view.capacity_frames // 4),
        )
        if frames <= 0:
            return
        # The co-tenant's allocation evicts resident blocks to make room
        # (driver.reserve_gpu_frames), so spikes land even on a fully
        # subscribed GPU.  The release is scheduled once the reservation
        # process reports how many frames it actually got.
        self._env.process(self._spike_process(gpu, frames))  # type: ignore[union-attr]
        self._record(count, f"spike:{gpu}:{frames}")

    def _spike_process(self, gpu: str, frames: int):
        driver = self._driver
        if driver is None:
            return
        reserved = yield from driver.reserve_gpu_frames(gpu, frames)
        if not reserved:
            return
        driver.counters.bump(Counters.PRESSURE_SPIKES)
        env = self._env
        if env is not None and self._runtime is not None:
            self._unspike.append(
                (
                    env.event_count + self.config.pressure_spike_duration,
                    gpu,
                    reserved,
                )
            )
        else:  # uninstalled mid-flight: hand the frames straight back
            driver.release_gpu_memory(gpu, reserved * BIG_PAGE)

    # ------------------------------------------------------------------
    # driver/executor hooks
    # ------------------------------------------------------------------

    def on_fault_batch(
        self, driver: "UvmDriver", gpu: str, blocks: Sequence["VaBlock"]
    ):
        """Perturb one replayable-fault batch (driver hook; a generator).

        A pending replay storm re-delivers the batch ``replay_storm_factor``
        extra times before it is serviced — modelled as extra batch
        overhead.  Independently, the batch may be serviced in a permuted
        order; residency outcomes must not depend on within-batch order.
        """
        blocks = list(blocks)
        if self._storm_armed:
            self._storm_armed = False
            driver.counters.bump(Counters.FAULT_REPLAY_STORMS)
            extra = self.config.replay_storm_factor * (
                driver.config.fault_batch_overhead
                + len(blocks) * driver.config.fault_per_block
            )
            if extra > 0:
                yield driver.env.timeout(extra)
            if driver.log.enabled:
                driver.log.log(
                    driver.env.now, "chaos",
                    "replay storm on %s: %d blocks re-delivered", gpu, len(blocks),
                )
        p = self.config.batch_reorder_probability
        if p and len(blocks) > 1 and self._reorder_rng.random() < p:
            self._reorder_rng.shuffle(blocks)
            driver.counters.bump(Counters.FAULT_BATCH_REORDERS)
        return blocks

    def kernel_abort(
        self, executor: "GpuExecutor", kernel: "KernelSpec", wave_index: int
    ) -> bool:
        """Whether to kill the running kernel at this wave boundary."""
        p = self.config.kernel_abort_probability
        if not p:
            return False
        if kernel is not self._current_kernel:
            self._current_kernel = kernel
            self._aborts_left = self.config.kernel_abort_limit
        if self._aborts_left <= 0:
            return False
        if self._abort_rng.random() >= p:
            return False
        self._aborts_left -= 1
        driver = executor.driver
        driver.counters.bump(Counters.KERNEL_ABORTS)
        if driver.log.enabled:
            driver.log.log(
                driver.env.now, "chaos",
                "kernel %s aborted at wave %d", kernel.name, wave_index,
            )
        env = self._env
        if env is not None:
            self._record(env.event_count, f"abort:{kernel.name}")
        return True
