"""Deterministic fault injection (chaos) with online invariant validation.

The chaos subsystem perturbs a running simulation at *event* granularity
while checking, mid-flight, that the UVM driver's structural invariants
and the discard directive's data semantics survive every perturbation:

- :class:`ChaosConfig` — the seed-driven fault schedule.  One seed fully
  determines every injection, so any chaos run is exactly reproducible.
- :class:`ChaosInjector` — an engine monitor that degrades the
  interconnect, arms transient DMA faults, retires ECC-hit frames,
  storms/reorders fault batches, aborts kernels mid-launch and spikes
  memory pressure, all on the schedule the seed draws.
- :class:`OnlineValidator` — an engine monitor running
  :func:`repro.harness.validation.check_driver_invariants` (plus the
  transfer-byte conservation checks) at a configurable event cadence
  *during* the simulation, not just at quiescence.
- :mod:`repro.chaos.runner` — the differential oracle: runs each
  functional workload fault-free and under chaos, asserting byte-identical
  outputs and reproducible event traces.

See ``docs/VALIDATION.md`` for the fault taxonomy and determinism rules.
"""

from repro.chaos.catalog import CHAOS_WORKLOADS
from repro.chaos.injector import ChaosInjector
from repro.chaos.runner import (
    ChaosRunReport,
    ChaosWorkloadResult,
    run_chaos_suite,
    trace_digest,
)
from repro.chaos.schedule import ChaosConfig
from repro.chaos.validator import OnlineValidator

__all__ = [
    "CHAOS_WORKLOADS",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosRunReport",
    "ChaosWorkloadResult",
    "OnlineValidator",
    "run_chaos_suite",
    "trace_digest",
]
