"""Request scheduling: dedup, coalescing, backpressure, rate limits.

The :class:`Scheduler` sits between the asyncio HTTP frontend and the
simulation executor and gives every request the same pipeline:

1. **cache dedup** — a content-hash hit in the
   :class:`~repro.harness.sweep.ResultCache` answers instantly,
2. **in-flight coalescing** — concurrent duplicates of a running point
   await the same future instead of re-simulating,
3. **backpressure** — at most ``queue_limit`` points may be outstanding
   (queued + running); interactive submissions beyond that raise
   :class:`Backpressure` (HTTP 429 + ``Retry-After``), while background
   sweep jobs politely wait for capacity,
4. **execution** — the point crosses to a worker
   (:func:`repro.serve.worker.run_point`), its outcome is written back
   to the cache, pool fork/cold provenance is counted, and every
   coalesced waiter is resolved.

Rate limiting is separate (:class:`RateLimiter`): a token bucket per
client id, checked by the server before a request reaches the
scheduler, so one hot client cannot starve the queue.

All wall-clock here is ``time.monotonic`` (never simulated time — that
belongs to the engine).  Metrics go to the shared
:class:`~repro.instrument.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, Optional

from repro.harness.sweep import ResultCache, SweepPoint
from repro.instrument.metrics import MetricsRegistry


class Backpressure(Exception):
    """The outstanding-request queue is full; retry after a delay."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"queue full; retry after {retry_after:.2f}s")
        self.retry_after = retry_after


class RateLimited(Exception):
    """The client exhausted its token bucket; retry after a delay."""

    def __init__(self, client: str, retry_after: float) -> None:
        super().__init__(
            f"client {client!r} rate-limited; retry after {retry_after:.2f}s"
        )
        self.client = client
        self.retry_after = retry_after


class TokenBucket:
    """A classic token bucket: ``burst`` capacity refilled at ``rate``/s."""

    __slots__ = ("rate", "burst", "tokens", "stamp", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"token rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must allow >= 1 token, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self._clock = clock
        self.stamp = clock()

    def try_take(self) -> Optional[float]:
        """Take one token; ``None`` on success, else seconds-to-retry."""
        now = self._clock()
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets; ``rate <= 0`` disables limiting."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def check(self, client: str) -> None:
        """Charge one request to ``client``; raise :class:`RateLimited`."""
        if self.rate <= 0:
            return
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, clock=self._clock
            )
        retry_after = bucket.try_take()
        if retry_after is not None:
            raise RateLimited(client, retry_after)


class Scheduler:
    """Dedup/coalesce/bound the flow of points into the executor."""

    def __init__(
        self,
        executor,
        run_fn: Callable[[Dict[str, object]], Dict[str, object]],
        cache: Optional[ResultCache],
        metrics: MetricsRegistry,
        queue_limit: int,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.executor = executor
        self.run_fn = run_fn
        self.cache = cache
        self.metrics = metrics
        self.queue_limit = queue_limit
        self.outstanding = 0
        self.closing = False
        self._started = time.monotonic()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._capacity = asyncio.Condition()
        #: Latest pool stats seen per worker pid (process executors have
        #: one warm pool per worker; the thread executor reports one).
        self.pool_stats: Dict[int, Dict[str, object]] = {}

    # -- metrics helpers -------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._started

    def _note_queue_depth(self) -> None:
        self.metrics.gauge("serve/queue_depth").set(self._now(), self.outstanding)

    # -- submission ------------------------------------------------------

    async def submit(self, point: SweepPoint, block: bool = False) -> Dict[str, object]:
        """Resolve one point to ``{"outcome", "provenance", "source"}``.

        ``provenance`` is ``"cache"`` (disk dedup), ``"coalesced"``
        (shared an in-flight simulation) or ``"run"``.  ``block=False``
        raises :class:`Backpressure` when the queue is full (the HTTP
        path); ``block=True`` waits for capacity (background sweeps).
        """
        key = point.cache_key()
        while True:
            if self.closing:
                raise Backpressure(retry_after=1.0)
            if self.cache is not None:
                outcome = self.cache.get(point)
                if outcome is not None:
                    self.metrics.counter("serve/cache_hits").inc()
                    return {"outcome": outcome, "provenance": "cache", "source": None}
            shared = self._inflight.get(key)
            if shared is not None:
                self.metrics.counter("serve/coalesced").inc()
                response = await asyncio.shield(shared)
                return {**response, "provenance": "coalesced"}
            if self.outstanding < self.queue_limit:
                # No await between this check and the increment inside
                # _execute, so the bound is never overshot.
                return await self._execute(point, key)
            if not block:
                self.metrics.counter("serve/rejected_busy").inc()
                raise Backpressure(retry_after=self._estimate_retry_after())
            async with self._capacity:
                await self._capacity.wait()
            # Loop: re-probe the cache and in-flight table — a duplicate
            # may have finished while this submission waited for capacity.

    async def _execute(self, point: SweepPoint, key: str) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.outstanding += 1
        self._note_queue_depth()
        try:
            worker_response = await loop.run_in_executor(
                self.executor, self.run_fn, point.to_dict()
            )
        except BaseException as exc:
            self.metrics.counter("serve/errors").inc()
            if not future.done():
                future.set_exception(exc)
                future.exception()  # mark retrieved for the no-waiter case
            raise
        finally:
            self._inflight.pop(key, None)
            self.outstanding -= 1
            self._note_queue_depth()
            async with self._capacity:
                self._capacity.notify_all()
        outcome = worker_response["outcome"]
        source = worker_response.get("source")
        if source:
            self.metrics.counter(f"serve/pool_{source}").inc()
        pid = worker_response.get("pid")
        pool = worker_response.get("pool")
        if pid is not None and pool is not None:
            self.pool_stats[pid] = pool
        if self.cache is not None:
            self.cache.put(point, outcome)
        self.metrics.counter("serve/simulated").inc()
        response = {"outcome": outcome, "provenance": "run", "source": source}
        future.set_result(response)
        return response

    def _estimate_retry_after(self) -> float:
        """A crude hint: mean observed request latency, floored at 50 ms."""
        histogram = self.metrics.histograms.get("serve/request_seconds")
        if histogram is not None and histogram.count:
            return max(0.05, histogram.total / histogram.count)
        return 0.25

    # -- shutdown --------------------------------------------------------

    async def drain(self, timeout: float) -> bool:
        """Stop accepting work and wait for in-flight points to finish.

        Returns ``True`` when everything drained inside ``timeout``.
        """
        self.closing = True
        async with self._capacity:
            self._capacity.notify_all()
        deadline = time.monotonic() + timeout
        while self.outstanding > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        return self.outstanding == 0
