"""Request scheduling: dedup, coalescing, backpressure, rate limits.

The :class:`Scheduler` sits between the asyncio HTTP frontend and the
simulation executor and gives every request the same pipeline:

1. **cache dedup** — a content-hash hit in the
   :class:`~repro.harness.sweep.ResultCache` answers instantly,
2. **in-flight coalescing** — concurrent duplicates of a running point
   await the same future instead of re-simulating,
3. **backpressure** — at most ``queue_limit`` points may be outstanding
   (queued + running); interactive submissions beyond that raise
   :class:`Backpressure` (HTTP 429 + ``Retry-After``), while background
   sweep jobs politely wait for capacity,
4. **prefix affinity** — when a point's
   :func:`~repro.harness.sweep.prefix_key` is cold host-wide and
   another request is already building it, followers park here (one
   asyncio event, no worker occupied) until the leader publishes the
   blob, then fork it warm.  A follower steals the build instead of
   waiting when workers sit idle or the leader exceeds
   ``affinity_wait_seconds`` — availability beats dedup — and the
   blob store's cross-process lock still guarantees one build per
   host either way,
5. **execution** — the point crosses to a worker
   (:func:`repro.serve.worker.run_point`), its outcome is written back
   to the cache, pool fork/blob/cold provenance is counted, and every
   coalesced waiter is resolved.

Rate limiting is separate (:class:`RateLimiter`): a token bucket per
client id, checked by the server before a request reaches the
scheduler, so one hot client cannot starve the queue.

All wall-clock here is ``time.monotonic`` (never simulated time — that
belongs to the engine).  Metrics go to the shared
:class:`~repro.instrument.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, Optional

from repro.harness.sweep import ResultCache, SweepPoint
from repro.instrument.metrics import MetricsRegistry


class Backpressure(Exception):
    """The outstanding-request queue is full; retry after a delay."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(f"queue full; retry after {retry_after:.2f}s")
        self.retry_after = retry_after


class RateLimited(Exception):
    """The client exhausted its token bucket; retry after a delay."""

    def __init__(self, client: str, retry_after: float) -> None:
        super().__init__(
            f"client {client!r} rate-limited; retry after {retry_after:.2f}s"
        )
        self.client = client
        self.retry_after = retry_after


class TokenBucket:
    """A classic token bucket: ``burst`` capacity refilled at ``rate``/s."""

    __slots__ = ("rate", "burst", "tokens", "stamp", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"token rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must allow >= 1 token, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self._clock = clock
        self.stamp = clock()

    def try_take(self) -> Optional[float]:
        """Take one token; ``None`` on success, else seconds-to-retry."""
        now = self._clock()
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets; ``rate <= 0`` disables limiting."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}

    def check(self, client: str) -> None:
        """Charge one request to ``client``; raise :class:`RateLimited`."""
        if self.rate <= 0:
            return
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, clock=self._clock
            )
        retry_after = bucket.try_take()
        if retry_after is not None:
            raise RateLimited(client, retry_after)


class Scheduler:
    """Dedup/coalesce/bound the flow of points into the executor."""

    #: How long a follower waits on a leader's prefix build before
    #: stealing it (falling through to the executor anyway).
    AFFINITY_WAIT_SECONDS = 60.0

    def __init__(
        self,
        executor,
        run_fn: Callable[[Dict[str, object]], Dict[str, object]],
        cache: Optional[ResultCache],
        metrics: MetricsRegistry,
        queue_limit: int,
        workers: int = 0,
        affinity_wait_seconds: Optional[float] = None,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.executor = executor
        self.run_fn = run_fn
        self.cache = cache
        self.metrics = metrics
        self.queue_limit = queue_limit
        #: Worker count, used for the work-stealing test ("is anyone
        #: idle?"); 0 disables prefix-affinity gating entirely.
        self.workers = workers
        self.affinity_wait_seconds = (
            self.AFFINITY_WAIT_SECONDS
            if affinity_wait_seconds is None
            else affinity_wait_seconds
        )
        self.outstanding = 0
        self.closing = False
        self._started = time.monotonic()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._capacity = asyncio.Condition()
        #: Latest pool stats seen per worker pid (process executors have
        #: one warm pool per worker; the thread executor reports one).
        self.pool_stats: Dict[int, Dict[str, object]] = {}
        #: Latest blob-store stats seen per worker pid.
        self.blob_stats: Dict[int, Dict[str, object]] = {}
        #: Prefixes known warm somewhere on this host (built at least
        #: once; eviction may falsify this — then the point just
        #: rebuilds, so it is only ever a scheduling hint).
        self._warm_prefixes: set = set()
        #: One asyncio.Event per prefix currently being built by a
        #: leader request; followers wait on it instead of occupying a
        #: worker slot with a duplicate build.
        self._prefix_builds: Dict[tuple, asyncio.Event] = {}

    # -- metrics helpers -------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._started

    def _note_queue_depth(self) -> None:
        self.metrics.gauge("serve/queue_depth").set(self._now(), self.outstanding)

    # -- submission ------------------------------------------------------

    async def submit(self, point: SweepPoint, block: bool = False) -> Dict[str, object]:
        """Resolve one point to ``{"outcome", "provenance", "source"}``.

        ``provenance`` is ``"cache"`` (disk dedup), ``"coalesced"``
        (shared an in-flight simulation) or ``"run"``.  ``block=False``
        raises :class:`Backpressure` when the queue is full (the HTTP
        path); ``block=True`` waits for capacity (background sweeps).
        """
        key = point.cache_key()
        steal = False
        while True:
            if self.closing:
                raise Backpressure(retry_after=1.0)
            if self.cache is not None:
                outcome = self.cache.get(point)
                if outcome is not None:
                    self.metrics.counter("serve/cache_hits").inc()
                    return {"outcome": outcome, "provenance": "cache", "source": None}
            shared = self._inflight.get(key)
            if shared is not None:
                self.metrics.counter("serve/coalesced").inc()
                response = await asyncio.shield(shared)
                return {**response, "provenance": "coalesced"}
            gate = None if steal else self._affinity_gate(point)
            if gate is not None:
                # A leader is already building this point's prefix and
                # no worker is idle: park here (costs one event, not a
                # worker) and re-probe once the blob is published.  On
                # timeout, steal the build — the blob store's lock
                # still keeps the host to one build.
                self.metrics.counter("serve/affinity_waits").inc()
                try:
                    await asyncio.wait_for(
                        gate.wait(), self.affinity_wait_seconds
                    )
                except asyncio.TimeoutError:
                    self.metrics.counter("serve/affinity_steals").inc()
                    steal = True
                continue
            if self.outstanding < self.queue_limit:
                # No await between this check and the increment inside
                # _execute, so the bound is never overshot.
                return await self._execute(point, key)
            if not block:
                self.metrics.counter("serve/rejected_busy").inc()
                raise Backpressure(retry_after=self._estimate_retry_after())
            async with self._capacity:
                await self._capacity.wait()
            # Loop: re-probe the cache and in-flight table — a duplicate
            # may have finished while this submission waited for capacity.

    def _prefix_of(self, point: SweepPoint) -> Optional[tuple]:
        from repro.harness.sweep import prefix_key

        return prefix_key(point)

    def _affinity_gate(self, point: SweepPoint) -> Optional["asyncio.Event"]:
        """The event a follower should wait on, or ``None`` to proceed.

        ``None`` when affinity is off (``workers == 0``), the point has
        no prefix, the prefix is already warm, nobody is building it
        (this request becomes the leader inside :meth:`_execute`), or a
        worker sits idle (work-stealing: better to occupy it — the
        blob-store lock still deduplicates the build host-wide).
        """
        if self.workers < 1:
            return None
        pkey = self._prefix_of(point)
        if pkey is None or pkey in self._warm_prefixes:
            return None
        gate = self._prefix_builds.get(pkey)
        if gate is None:
            return None
        if self.outstanding < self.workers:
            self.metrics.counter("serve/affinity_steals").inc()
            return None
        return gate

    async def _execute(self, point: SweepPoint, key: str) -> Dict[str, object]:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.outstanding += 1
        self._note_queue_depth()
        # Claim prefix leadership: followers of a cold prefix park on
        # this event in submit() instead of occupying workers.
        pkey = self._prefix_of(point) if self.workers >= 1 else None
        claimed = (
            pkey is not None
            and pkey not in self._warm_prefixes
            and pkey not in self._prefix_builds
        )
        if claimed:
            self._prefix_builds[pkey] = asyncio.Event()
        try:
            worker_response = await loop.run_in_executor(
                self.executor, self.run_fn, point.to_dict()
            )
        except BaseException as exc:
            self.metrics.counter("serve/errors").inc()
            if not future.done():
                future.set_exception(exc)
                future.exception()  # mark retrieved for the no-waiter case
            raise
        finally:
            self._inflight.pop(key, None)
            self.outstanding -= 1
            self._note_queue_depth()
            if claimed:
                gate = self._prefix_builds.pop(pkey, None)
                if gate is not None:
                    gate.set()
            async with self._capacity:
                self._capacity.notify_all()
        outcome = worker_response["outcome"]
        source = worker_response.get("source")
        if source:
            self.metrics.counter(f"serve/pool_{source}").inc()
        if pkey is not None and source in ("fork", "blob", "cold"):
            # The prefix is warm somewhere on the host now: in the
            # worker's pool and (cold/blob paths) in the blob store.
            self._warm_prefixes.add(pkey)
        pid = worker_response.get("pid")
        pool = worker_response.get("pool")
        if pid is not None and pool is not None:
            self.pool_stats[pid] = pool
        blob = worker_response.get("blob_store")
        if pid is not None and blob is not None:
            self.blob_stats[pid] = blob
        if self.cache is not None:
            self.cache.put(point, outcome)
        self.metrics.counter("serve/simulated").inc()
        response = {"outcome": outcome, "provenance": "run", "source": source}
        future.set_result(response)
        return response

    def _estimate_retry_after(self) -> float:
        """A crude hint: mean observed request latency, floored at 50 ms."""
        histogram = self.metrics.histograms.get("serve/request_seconds")
        if histogram is not None and histogram.count:
            return max(0.05, histogram.total / histogram.count)
        return 0.25

    # -- shutdown --------------------------------------------------------

    async def drain(self, timeout: float) -> bool:
        """Stop accepting work and wait for in-flight points to finish.

        Returns ``True`` when everything drained inside ``timeout``.
        """
        self.closing = True
        async with self._capacity:
            self._capacity.notify_all()
        deadline = time.monotonic() + timeout
        while self.outstanding > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        return self.outstanding == 0
