"""The asyncio JSON-over-HTTP experiment server.

A deliberately dependency-free HTTP/1.1 implementation over
``asyncio.start_server`` (the container bakes in no web framework; the
protocol surface is four routes of JSON, which forty lines of parsing
covers).  Responses always close the connection — clients issue one
request per connection, which keeps the parser trivial and is plenty
for hundreds of concurrent in-flight requests.

Routes (full schema in ``docs/SERVING.md``):

- ``GET  /healthz``      — liveness + config echo
- ``GET  /metrics``      — counters, latency quantiles, queue depth,
  per-worker snapshot-pool stats
- ``POST /run``          — one point; waits for the result by default
- ``POST /sweep``        — a batch (inline points or a grid spec);
  returns a job id immediately
- ``GET  /status/<id>``  — job progress / final outcomes

Error contract: malformed HTTP or JSON → 400, unknown route → 404,
wrong method → 405, rate-limited client or full queue → 429 with a
``Retry-After`` header, worker crash → 500.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import re
import signal
import tempfile
import time
import urllib.parse
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.harness.sweep import ResultCache, SweepGrid, SweepPoint
from repro.instrument.metrics import MetricsRegistry
from repro.serve import worker
from repro.serve.scheduler import Backpressure, RateLimited, RateLimiter, Scheduler

#: Quantiles reported for every histogram in ``/metrics``.
LATENCY_QUANTILES = (0.5, 0.9, 0.99)


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8731
    workers: int = 2
    executor: str = "process"  # "process" | "thread"
    pool_bytes: int = worker.DEFAULT_POOL_BYTES
    #: Byte budget of the host-shared blob store of serialized prefix
    #: snapshots (0 disables cross-worker prefix sharing).
    blob_bytes: int = worker.DEFAULT_BLOB_BYTES
    #: Blob-store directory; ``None`` = a per-server temporary
    #: directory, removed at shutdown.  Only used by the process
    #: executor unless set explicitly (thread workers already share
    #: one in-process pool).
    blob_dir: Optional[Path] = None
    queue_limit: int = 256
    rate: float = 0.0  # tokens/second per client; <= 0 disables
    burst: float = 20.0
    cache_dir: Optional[Path] = None  # None = caching disabled
    drain_seconds: float = 10.0

    def validate(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"--workers must be >= 1: {self.workers}")
        if self.executor not in ("process", "thread"):
            raise ConfigurationError(
                f"executor must be 'process' or 'thread': {self.executor!r}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"--queue-limit must be >= 1: {self.queue_limit}"
            )
        if self.pool_bytes < 0:
            raise ConfigurationError(
                f"--pool-bytes must be >= 0: {self.pool_bytes}"
            )
        if self.blob_bytes < 0:
            raise ConfigurationError(
                f"--blob-bytes must be >= 0: {self.blob_bytes}"
            )
        if self.rate > 0 and self.burst < 1:
            raise ConfigurationError(f"--burst must be >= 1: {self.burst}")
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(f"--port out of range: {self.port}")


@dataclass
class Job:
    """One ``/sweep`` (or deferred ``/run``) submission."""

    id: str
    points: List[SweepPoint]
    state: str = "running"  # running | done
    outcomes: List[Optional[Dict[str, object]]] = field(default_factory=list)
    provenance: List[Optional[str]] = field(default_factory=list)
    started: float = field(default_factory=time.monotonic)
    finished: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.outcomes:
            self.outcomes = [None] * len(self.points)
            self.provenance = [None] * len(self.points)

    @property
    def done(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome is not None)

    def status_dict(self) -> Dict[str, object]:
        wall = (self.finished or time.monotonic()) - self.started
        payload: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "total": len(self.points),
            "done": self.done,
            "provenance": self.provenance,
            "wall_seconds": wall,
        }
        if self.state == "done":
            payload["outcomes"] = self.outcomes
            payload["points"] = [point.to_dict() for point in self.points]
        return payload


class ExperimentServer:
    """Bind, serve, drain.  One instance per ``repro serve`` process."""

    def __init__(self, config: ServeConfig) -> None:
        config.validate()
        self.config = config
        self.metrics = MetricsRegistry()
        self.limiter = RateLimiter(config.rate, config.burst)
        self.cache = (
            ResultCache(config.cache_dir) if config.cache_dir is not None else None
        )
        self.scheduler: Optional[Scheduler] = None
        self.jobs: Dict[str, Job] = {}
        self._job_ids = itertools.count(1)
        self._job_tasks: List[asyncio.Task] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = None
        self._blob_tmp = None
        self._started = time.monotonic()
        self._stop = asyncio.Event()
        #: Concurrently-open HTTP requests, and the high-water mark —
        #: how much concurrency the server actually sustained.
        self._active_requests = 0
        self._peak_requests = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        config = self.config
        blob_dir: Optional[str] = None
        if config.blob_dir is not None:
            blob_dir = str(config.blob_dir)
        elif config.executor == "process" and config.blob_bytes > 0:
            # Cross-worker prefix sharing needs a host directory; make
            # a private one that dies with the server.  Thread workers
            # already share one in-process pool, so they only get a
            # store when one is named explicitly.
            self._blob_tmp = tempfile.TemporaryDirectory(prefix="repro-blobs-")
            blob_dir = self._blob_tmp.name
        if config.executor == "process":
            self._executor = ProcessPoolExecutor(
                max_workers=config.workers,
                initializer=worker.init_worker,
                initargs=(config.pool_bytes, blob_dir, config.blob_bytes),
            )
        else:
            # Threads share one (thread-safe) pool in this process.
            worker.init_worker(config.pool_bytes, blob_dir, config.blob_bytes)
            self._executor = ThreadPoolExecutor(max_workers=config.workers)
        self.scheduler = Scheduler(
            self._executor,
            worker.run_point,
            self.cache,
            self.metrics,
            config.queue_limit,
            workers=config.workers,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port
        )

    def request_shutdown(self) -> None:
        self._stop.set()

    async def run_until_stopped(self, install_signals: bool = True) -> int:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`), then
        drain gracefully.  Returns the process exit code (0 = clean)."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self._stop.set)
        try:
            await self._stop.wait()
        finally:
            if install_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    loop.remove_signal_handler(signum)
        drained = await self.shutdown()
        return 0 if drained else 1

    async def shutdown(self) -> bool:
        """Stop accepting, drain in-flight work, release the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = True
        if self.scheduler is not None:
            drained = await self.scheduler.drain(self.config.drain_seconds)
        for task in self._job_tasks:
            if not task.done():
                task.cancel()
        if self._job_tasks:
            await asyncio.gather(*self._job_tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
        if self._blob_tmp is not None:
            self._blob_tmp.cleanup()
            self._blob_tmp = None
        return drained

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload, extra = 500, {"error": "internal error"}, {}
        self._active_requests += 1
        self._peak_requests = max(self._peak_requests, self._active_requests)
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    writer.close()
                    return
                method, path, body = request
                status, payload, extra = await self._route(method, path, body)
            except _HttpError as exc:
                status, payload, extra = exc.status, {"error": exc.message}, {}
            except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
                self.metrics.counter("serve/errors").inc()
                status, payload, extra = (
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                    {},
                )
            try:
                await self._write_response(writer, status, payload, extra)
            except (ConnectionError, OSError):
                pass  # client went away; nothing to clean up
        finally:
            self._active_requests -= 1

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, OSError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header: {line!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > 32 * 1024 * 1024:
            raise _HttpError(400, f"unreasonable Content-Length: {length}")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        extra_headers: Dict[str, str],
    ) -> None:
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            500: "Internal Server Error",
        }.get(status, "OK")
        if isinstance(payload, str):
            # Text exposition (Prometheus scrape); JSON stays the default.
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode()
            content_type = "application/json"
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        headers.extend(f"{k}: {v}" for k, v in extra_headers.items())
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()
        writer.close()

    # -- routing ---------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        self.metrics.counter("serve/requests").inc()
        path, _, query = path.partition("?")
        if path == "/healthz":
            self._require(method, "GET")
            return 200, {
                "ok": True,
                "executor": self.config.executor,
                "workers": self.config.workers,
                "uptime_seconds": time.monotonic() - self._started,
            }, {}
        if path == "/metrics":
            self._require(method, "GET")
            params = urllib.parse.parse_qs(query)
            if params.get("format", ["json"])[-1] == "prometheus":
                return 200, self.prometheus_payload(), {}
            return 200, self.metrics_payload(), {}
        if path == "/run":
            self._require(method, "POST")
            return await self._handle_run(self._parse_json(body))
        if path == "/sweep":
            self._require(method, "POST")
            return await self._handle_sweep(self._parse_json(body))
        if path.startswith("/status/"):
            self._require(method, "GET")
            job = self.jobs.get(path[len("/status/"):])
            if job is None:
                raise _HttpError(404, "unknown job id")
            return 200, job.status_dict(), {}
        raise _HttpError(404, f"no route {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    @staticmethod
    def _parse_json(body: bytes) -> Dict[str, object]:
        try:
            data = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, ValueError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(data, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return data

    @staticmethod
    def _parse_point(data: object) -> SweepPoint:
        if not isinstance(data, dict):
            raise _HttpError(400, "'point' must be an object")
        try:
            return SweepPoint.from_dict(data)
        except (ConfigurationError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad point: {exc}") from None

    def _check_client(self, request: Dict[str, object]) -> str:
        client = request.get("client", "anon")
        if not isinstance(client, str) or not client:
            raise _HttpError(400, "'client' must be a non-empty string")
        try:
            self.limiter.check(client)
        except RateLimited as exc:
            self.metrics.counter("serve/rejected_rate").inc()
            raise _HttpError(
                429,
                str(exc),
                headers={"Retry-After": f"{max(0.01, exc.retry_after):.3f}"},
            ) from None
        return client

    # -- handlers --------------------------------------------------------

    async def _handle_run(
        self, request: Dict[str, object]
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        self._check_client(request)
        if "point" not in request:
            raise _HttpError(400, "run request needs a 'point' object")
        point = self._parse_point(request["point"])
        wait = request.get("wait", True)
        if not isinstance(wait, bool):
            raise _HttpError(400, "'wait' must be a boolean")
        if not wait:
            job = self._spawn_job([point])
            return 202, {"id": job.id, "points": 1}, {}
        started = time.monotonic()
        try:
            response = await self.scheduler.submit(point, block=False)
        except Backpressure as exc:
            raise _HttpError(
                429,
                str(exc),
                headers={"Retry-After": f"{max(0.01, exc.retry_after):.3f}"},
            ) from None
        elapsed = time.monotonic() - started
        self.metrics.observe("serve/request_seconds", elapsed)
        return 200, {
            "point": point.to_dict(),
            "outcome": response["outcome"],
            "provenance": response["provenance"],
            "source": response["source"],
            "seconds": elapsed,
        }, {}

    async def _handle_sweep(
        self, request: Dict[str, object]
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        self._check_client(request)
        points_spec = request.get("points")
        grid_spec = request.get("grid")
        if (points_spec is None) == (grid_spec is None):
            raise _HttpError(400, "sweep request needs 'points' or 'grid'")
        if points_spec is not None:
            if not isinstance(points_spec, list) or not points_spec:
                raise _HttpError(400, "'points' must be a non-empty array")
            points = [self._parse_point(item) for item in points_spec]
        else:
            if not isinstance(grid_spec, dict):
                raise _HttpError(400, "'grid' must be an object")
            try:
                points = SweepGrid.from_dict(grid_spec).expand()
            except (ConfigurationError, TypeError, ValueError) as exc:
                raise _HttpError(400, f"bad grid: {exc}") from None
        job = self._spawn_job(points)
        return 202, {"id": job.id, "points": len(points)}, {}

    def _spawn_job(self, points: List[SweepPoint]) -> Job:
        job = Job(id=f"job-{next(self._job_ids)}", points=points)
        self.jobs[job.id] = job
        task = asyncio.get_running_loop().create_task(self._run_job(job))
        self._job_tasks.append(task)
        self._job_tasks = [t for t in self._job_tasks if not t.done()]
        return job

    async def _run_job(self, job: Job) -> None:
        async def one(index: int, point: SweepPoint) -> None:
            started = time.monotonic()
            try:
                response = await self.scheduler.submit(point, block=True)
                job.outcomes[index] = response["outcome"]
                job.provenance[index] = response["provenance"]
            except Backpressure:
                job.outcomes[index] = {"status": "error", "error": "server draining"}
                job.provenance[index] = "error"
            except Exception as exc:  # noqa: BLE001 - record per-point failure
                job.outcomes[index] = {
                    "status": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
                job.provenance[index] = "error"
            else:
                self.metrics.observe(
                    "serve/request_seconds", time.monotonic() - started
                )

        try:
            await asyncio.gather(
                *(one(index, point) for index, point in enumerate(job.points))
            )
        finally:
            job.state = "done"
            job.finished = time.monotonic()

    # -- metrics ---------------------------------------------------------

    def metrics_payload(self) -> Dict[str, object]:
        """The ``/metrics`` JSON document."""
        registry = self.metrics
        histograms: Dict[str, Dict[str, float]] = {}
        for name in sorted(registry.histograms):
            histogram = registry.histograms[name]
            summary = histogram.summary()
            for q in LATENCY_QUANTILES:
                summary[f"p{int(q * 100)}"] = histogram.quantile(q)
            histograms[name] = summary
        scheduler = self.scheduler
        pools = (
            {str(pid): stats for pid, stats in sorted(scheduler.pool_stats.items())}
            if scheduler is not None
            else {}
        )
        blob_stores = (
            {str(pid): stats for pid, stats in sorted(scheduler.blob_stats.items())}
            if scheduler is not None
            else {}
        )
        # Per-process counters sum; host-wide disk truth (entries,
        # bytes, builds) comes from the freshest worker snapshot.
        blob_store: Optional[Dict[str, object]] = None
        if blob_stores:
            stats_list = list(blob_stores.values())
            newest = max(stats_list, key=lambda s: s.get("builds_total", 0))
            blob_store = {
                key: sum(int(stats.get(key, 0)) for stats in stats_list)
                for key in (
                    "hits", "misses", "published", "evicted",
                    "rejected_oversize", "lock_waits", "lock_steals",
                    "wait_timeouts",
                )
            }
            for key in ("entries", "bytes", "builds_total", "builds_distinct"):
                blob_store[key] = newest.get(key, 0)

        def _count(name: str) -> int:
            counter = registry.counters.get(name)
            return counter.value if counter is not None else 0

        forks = _count("serve/pool_fork")
        blobs = _count("serve/pool_blob")
        colds = _count("serve/pool_cold")
        warm = forks + blobs
        return {
            "counters": {
                name: registry.counters[name].value
                for name in sorted(registry.counters)
            },
            "gauges": {
                name: registry.gauges[name].last
                for name in sorted(registry.gauges)
            },
            "histograms": histograms,
            "pools": pools,
            "blob_stores": blob_stores,
            "blob_store": blob_store,
            "pool_hit_rate": warm / (warm + colds) if warm + colds else 0.0,
            "queue": {
                "outstanding": scheduler.outstanding if scheduler else 0,
                "limit": self.config.queue_limit,
            },
            "http": {
                "active": self._active_requests,
                "peak": self._peak_requests,
            },
            "jobs": {
                "total": len(self.jobs),
                "running": sum(
                    1 for job in self.jobs.values() if job.state == "running"
                ),
            },
            "cache": {"enabled": self.cache is not None},
        }

    def prometheus_payload(self) -> str:
        """``/metrics?format=prometheus`` — text exposition format 0.0.4.

        Counters become ``repro_<name>_total`` counters, gauges and the
        derived operational numbers (queue depth, pool hit rate, active
        requests, job counts) become gauges, histograms become
        summaries with the same quantiles as the JSON document.  Metric
        names are sanitized (``serve/request_seconds`` →
        ``repro_serve_request_seconds``); output order is sorted, so
        scrapes are byte-stable for identical state.
        """
        registry = self.metrics
        lines: List[str] = []

        def emit(name: str, kind: str, samples: List[Tuple[str, float]]) -> None:
            lines.append(f"# TYPE {name} {kind}")
            for suffix, value in samples:
                if isinstance(value, float) and not value.is_integer():
                    lines.append(f"{name}{suffix} {value}")
                else:
                    lines.append(f"{name}{suffix} {int(value)}")

        for raw in sorted(registry.counters):
            emit(
                f"{_prom_name(raw)}_total",
                "counter",
                [("", registry.counters[raw].value)],
            )
        for raw in sorted(registry.gauges):
            emit(_prom_name(raw), "gauge", [("", registry.gauges[raw].last)])
        for raw in sorted(registry.histograms):
            histogram = registry.histograms[raw]
            name = _prom_name(raw)
            samples = [
                (f'{{quantile="{q}"}}', histogram.quantile(q))
                for q in LATENCY_QUANTILES
            ]
            samples.append(("_sum", histogram.total))
            samples.append(("_count", histogram.count))
            emit(name, "summary", samples)
        scheduler = self.scheduler
        forks = registry.counters.get("serve/pool_fork")
        blobs = registry.counters.get("serve/pool_blob")
        colds = registry.counters.get("serve/pool_cold")
        warm = (forks.value if forks else 0) + (blobs.value if blobs else 0)
        cold = colds.value if colds else 0
        derived = [
            ("repro_serve_pool_hit_rate", warm / (warm + cold) if warm + cold else 0.0),
            ("repro_serve_queue_outstanding", scheduler.outstanding if scheduler else 0),
            ("repro_serve_queue_limit", self.config.queue_limit),
            ("repro_serve_http_active", self._active_requests),
            ("repro_serve_http_peak", self._peak_requests),
            ("repro_serve_jobs_total", len(self.jobs)),
            (
                "repro_serve_jobs_running",
                sum(1 for job in self.jobs.values() if job.state == "running"),
            ),
        ]
        for name, value in derived:
            emit(name, "gauge", [("", value)])
        return "\n".join(lines) + "\n"


def _prom_name(raw: str) -> str:
    """Sanitize a registry metric name into a Prometheus one."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", raw)


class _HttpError(Exception):
    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


async def _serve_async(config: ServeConfig, announce) -> int:
    server = ExperimentServer(config)
    await server.start()
    announce(server)
    return await server.run_until_stopped()


def serve_forever(config: ServeConfig, announce=None) -> int:
    """Blocking entry point behind ``python -m repro serve``."""

    def default_announce(server: ExperimentServer) -> None:
        print(
            f"serving on http://{config.host}:{server.port} "
            f"({config.executor} x{config.workers}, "
            f"pool {config.pool_bytes >> 20} MiB/worker, "
            f"blob store {config.blob_bytes >> 20} MiB/host, "
            f"queue {config.queue_limit}, "
            f"cache {'on' if server.cache is not None else 'off'})",
            flush=True,
        )

    return asyncio.run(_serve_async(config, announce or default_announce))
