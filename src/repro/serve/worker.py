"""Simulation workers: pooled point execution behind the server.

Each worker (a process of the :class:`~concurrent.futures.
ProcessPoolExecutor`, or the single shared state of the thread
executor) owns one :class:`~repro.engine.snapshot.SnapshotPool`.  A
request whose :func:`~repro.harness.sweep.prefix_key` is warm forks the
quiesced snapshot and runs only the measured body; a cold request
simulates the setup prefix once, admits its snapshot for future
requests, and then runs the body **on a fork of that snapshot** — the
exact split-phase protocol of
:func:`~repro.harness.sweep.execute_group`, which
``tests/test_snapshot_fork.py`` pins byte-identical to a monolithic
cold :func:`~repro.harness.sweep.execute_point` run.  Points without a
prefix key (No-UVM, ``snapshot_reuse=False`` opt-outs) run unpooled.

Everything crossing the process boundary is a plain dict: the point in,
``{"outcome", "source", "pid", "pool"}`` out.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.engine.snapshot import EngineSnapshot, SnapshotPool
from repro.errors import OutOfMemoryError, SnapshotError

#: Default per-worker snapshot-pool budget (bytes).
DEFAULT_POOL_BYTES = 256 * 1024 * 1024

#: The worker's warm pool; ``None`` until :func:`init_worker` runs (or
#: when pooling is disabled with a zero budget).
_POOL: Optional[SnapshotPool] = None


def init_worker(pool_bytes: int = DEFAULT_POOL_BYTES) -> None:
    """Executor initializer: create this worker's warm snapshot pool.

    ``pool_bytes <= 0`` disables pooling (every request runs unpooled).
    The process executor runs this once per worker process; the thread
    executor calls it once in the server process, so all threads share
    one (thread-safe) pool.
    """
    global _POOL
    _POOL = SnapshotPool(pool_bytes) if pool_bytes > 0 else None


def worker_pool() -> Optional[SnapshotPool]:
    """This worker's pool (test hook; ``None`` when pooling is off)."""
    return _POOL


def run_point(point_dict: Dict[str, object]) -> Dict[str, object]:
    """Top-level (picklable) worker entry: simulate one point.

    Returns ``{"outcome": <outcome dict>, "source": "fork"|"cold"|
    "unpooled", "pid": <worker pid>, "pool": <stats or None>}``.
    """
    from repro.harness.sweep import SweepPoint

    point = SweepPoint.from_dict(point_dict)
    outcome, source = execute_point_pooled(point, _POOL)
    return {
        "outcome": outcome,
        "source": source,
        "pid": os.getpid(),
        "pool": _POOL.stats() if _POOL is not None else None,
    }


def execute_point_pooled(
    point, pool: Optional[SnapshotPool]
) -> Tuple[Dict[str, object], str]:
    """Simulate ``point``, forking from ``pool`` when its prefix is warm.

    Returns ``(outcome_dict, source)`` where ``source`` is ``"fork"``
    (warm-pool hit), ``"cold"`` (prefix simulated here, snapshot
    admitted for next time) or ``"unpooled"`` (no pool / no split-phase
    plan).  The outcome dict is exactly what the sweep cache stores, so
    served results compare byte-for-byte with ``repro run``.
    """
    from repro.driver.config import UvmDriverConfig
    from repro.harness.runner import run_uvm_body, run_uvm_prefix
    from repro.harness.sweep import (
        _driver_config,
        _gpu_spec,
        _install_chaos,
        _link,
        _outcome_to_dict,
        _point_plan,
        execute_point,
        prefix_key,
    )

    key = prefix_key(point) if pool is not None else None
    plan = _point_plan(point) if key is not None else None
    if pool is None or key is None or plan is None:
        return _outcome_to_dict(execute_point(point)), "unpooled"

    runtime = pool.fork(key)
    source = "fork"
    if runtime is None:
        source = "cold"
        try:
            prefix_runtime = run_uvm_prefix(
                plan.setup,
                _gpu_spec(point),
                _link(point),
                driver_config=_driver_config(point),
            )
        except OutOfMemoryError:
            return {"status": "oom"}, source
        try:
            snapshot = EngineSnapshot(prefix_runtime)
        except SnapshotError:
            # A non-quiescent prefix cannot be pooled; degrade to the
            # monolithic cold path (identical results, no reuse).
            return _outcome_to_dict(execute_point(point)), "unpooled"
        pool.admit(key, snapshot)
        # Run the body on a fork (not the prefix runtime itself) so the
        # cold path executes the same protocol as the warm path.
        runtime = snapshot.fork()

    runtime.driver.reconfigure(_driver_config(point) or UvmDriverConfig())
    injector = _install_chaos(runtime, point)
    try:
        result = run_uvm_body(
            runtime,
            plan.body,
            plan.system,
            plan.config_label,
            plan.app_bytes,
            plan.ratio,
            metric=plan.metric,
        )
    except OutOfMemoryError:
        return {"status": "oom"}, source
    finally:
        if injector is not None:
            injector.uninstall()
    return _outcome_to_dict(result), source
