"""Simulation workers: pooled point execution behind the server.

Each worker (a process of the :class:`~concurrent.futures.
ProcessPoolExecutor`, or the single shared state of the thread
executor) owns one :class:`~repro.engine.snapshot.SnapshotPool`, and
all workers on a host share one file-backed
:class:`~repro.engine.snapshot.BlobStore` of serialized prefix
snapshots.  A request resolves its
:func:`~repro.harness.sweep.prefix_key` through that hierarchy: a warm
pool entry forks in-memory, a pool miss falls through to the shared
store (one ``pickle.loads`` away — a prefix built by *any* worker is
warm for all of them), and only a host-wide miss simulates the setup
prefix, publishes its blob for the other workers, and admits it
locally.  The measured body always runs **on a fork of the snapshot**
— the exact split-phase protocol of
:func:`~repro.harness.sweep.execute_group`, which
``tests/test_snapshot_fork.py`` pins byte-identical to a monolithic
cold :func:`~repro.harness.sweep.execute_point` run.  Points without a
prefix key (No-UVM, ``snapshot_reuse=False`` opt-outs) run unpooled.

Everything crossing the process boundary is a plain dict: the point in,
``{"outcome", "source", "pid", "pool", "blob_store"}`` out.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.engine.snapshot import BlobStore, SnapshotPool
from repro.errors import OutOfMemoryError

#: Default per-worker snapshot-pool budget (bytes).
DEFAULT_POOL_BYTES = 256 * 1024 * 1024

#: Default host-wide blob-store budget (bytes).
DEFAULT_BLOB_BYTES = BlobStore.DEFAULT_MAX_BYTES

#: The worker's warm pool; ``None`` until :func:`init_worker` runs (or
#: when pooling is disabled with a zero budget).
_POOL: Optional[SnapshotPool] = None

#: The host-shared blob store; ``None`` when cross-worker sharing is
#: off (no directory configured, or a zero budget).
_BLOB_STORE: Optional[BlobStore] = None


def init_worker(
    pool_bytes: int = DEFAULT_POOL_BYTES,
    blob_dir: Optional[str] = None,
    blob_bytes: int = DEFAULT_BLOB_BYTES,
) -> None:
    """Executor initializer: create this worker's snapshot machinery.

    ``pool_bytes <= 0`` disables the in-process pool; ``blob_dir=None``
    or ``blob_bytes <= 0`` disables the cross-worker blob store.  The
    process executor runs this once per worker process (every process
    gets its own pool but shares the one store directory); the thread
    executor calls it once in the server process, so all threads share
    one (thread-safe) pool.
    """
    global _POOL, _BLOB_STORE
    _POOL = SnapshotPool(pool_bytes) if pool_bytes > 0 else None
    _BLOB_STORE = (
        BlobStore(blob_dir, max_bytes=blob_bytes)
        if blob_dir and blob_bytes > 0
        else None
    )


def worker_pool() -> Optional[SnapshotPool]:
    """This worker's pool (test hook; ``None`` when pooling is off)."""
    return _POOL


def worker_blob_store() -> Optional[BlobStore]:
    """This worker's view of the shared store (test hook)."""
    return _BLOB_STORE


def run_point(point_dict: Dict[str, object]) -> Dict[str, object]:
    """Top-level (picklable) worker entry: simulate one point.

    Returns ``{"outcome": <outcome dict>, "source": "fork"|"blob"|
    "cold"|"unpooled", "pid": <worker pid>, "pool": <stats or None>,
    "blob_store": <stats or None>}``.
    """
    from repro.harness.sweep import SweepPoint

    point = SweepPoint.from_dict(point_dict)
    outcome, source = execute_point_pooled(point, _POOL, _BLOB_STORE)
    return {
        "outcome": outcome,
        "source": source,
        "pid": os.getpid(),
        "pool": _POOL.stats() if _POOL is not None else None,
        "blob_store": (
            _BLOB_STORE.stats() if _BLOB_STORE is not None else None
        ),
    }


def execute_point_pooled(
    point,
    pool: Optional[SnapshotPool],
    store: Optional[BlobStore] = None,
) -> Tuple[Dict[str, object], str]:
    """Simulate ``point``, forking from the warm hierarchy when possible.

    Returns ``(outcome_dict, source)`` where ``source`` is ``"fork"``
    (warm in-process pool hit), ``"blob"`` (forked a blob another
    worker published), ``"cold"`` (prefix simulated here, snapshot
    published/admitted for next time) or ``"unpooled"`` (no pool or
    store / no split-phase plan).  The outcome dict is exactly what the
    sweep cache stores, so served results compare byte-for-byte with
    ``repro run``.
    """
    from repro.driver.config import UvmDriverConfig
    from repro.engine.snapshot import resolve_prefix_snapshot
    from repro.harness.runner import run_uvm_body, run_uvm_prefix
    from repro.harness.sweep import (
        _driver_config,
        _gpu_spec,
        _install_chaos,
        _link,
        _outcome_to_dict,
        _point_plan,
        execute_point,
        prefix_key,
    )

    warm = pool is not None or store is not None
    key = prefix_key(point) if warm else None
    plan = _point_plan(point) if key is not None else None
    if key is None or plan is None:
        return _outcome_to_dict(execute_point(point)), "unpooled"

    oom_sentinel = []

    def build():
        try:
            return run_uvm_prefix(
                plan.setup,
                _gpu_spec(point),
                _link(point),
                driver_config=_driver_config(point),
            )
        except OutOfMemoryError:
            oom_sentinel.append(True)
            return None

    snapshot, origin = resolve_prefix_snapshot(
        key, build, pool=pool, store=store
    )
    if snapshot is None:
        if oom_sentinel:
            return {"status": "oom"}, "cold"
        # A non-quiescent prefix cannot be pooled; degrade to the
        # monolithic cold path (identical results, no reuse).
        return _outcome_to_dict(execute_point(point)), "unpooled"
    source = {"pool": "fork", "blob": "blob", "built": "cold"}[origin]
    # Run the body on a fork (not the captured prefix itself) so cold,
    # blob and warm paths all execute the same protocol.
    runtime = snapshot.fork()

    runtime.driver.reconfigure(_driver_config(point) or UvmDriverConfig())
    injector = _install_chaos(runtime, point)
    try:
        result = run_uvm_body(
            runtime,
            plan.body,
            plan.system,
            plan.config_label,
            plan.app_bytes,
            plan.ratio,
            metric=plan.metric,
        )
    except OutOfMemoryError:
        return {"status": "oom"}, source
    finally:
        if injector is not None:
            injector.uninstall()
    return _outcome_to_dict(result), source
