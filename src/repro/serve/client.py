"""Synchronous client for the experiment server.

Plain-stdlib (``http.client``) so worker threads, the load generator
and CI scripts can all talk to ``repro serve`` without dependencies.
One connection per request matches the server's ``Connection: close``
contract.

The client is *retrying*: a 429 (rate limit or queue backpressure) is
honored by sleeping the server's ``Retry-After`` hint and retrying, up
to ``max_retries`` attempts — modeled on the retrying, concurrency-
limited call surface of a production inference client.  Anything else
``>= 400`` raises :class:`ServeError` immediately.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import urlsplit


class ServeError(RuntimeError):
    """A non-retryable (or retries-exhausted) server response."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServeClient:
    """JSON-over-HTTP client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        base_url: str,
        client_id: str = "anon",
        timeout: float = 120.0,
        max_retries: int = 20,
        max_backoff: float = 2.0,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(f"expected an http://host:port URL, got {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.client_id = client_id
        self.timeout = timeout
        self.max_retries = max_retries
        self.max_backoff = max_backoff
        #: 429s absorbed by retrying; the load generator reports this.
        self.retries = 0

    # -- transport -------------------------------------------------------

    def _once(
        self, method: str, path: str, payload: Optional[Dict[str, object]]
    ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            data = json.loads(raw.decode()) if raw else {}
            if not isinstance(data, dict):
                data = {"value": data}
            return response.status, dict(response.getheaders()), data
        finally:
            connection.close()

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        for attempt in range(self.max_retries + 1):
            status, headers, data = self._once(method, path, payload)
            if status == 429 and attempt < self.max_retries:
                self.retries += 1
                try:
                    delay = float(headers.get("Retry-After", "0.1"))
                except ValueError:
                    delay = 0.1
                time.sleep(min(max(0.01, delay), self.max_backoff))
                continue
            if status >= 400:
                raise ServeError(status, data)
            return data
        raise ServeError(429, data)  # pragma: no cover - loop always returns

    # -- API -------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")

    def run_point(
        self, point: Union[Dict[str, object], object], wait: bool = True
    ) -> Dict[str, object]:
        """Run one experiment point; returns the server's response dict
        (``outcome``/``provenance``/``source`` when ``wait``, else a job
        id)."""
        if hasattr(point, "to_dict"):
            point = point.to_dict()
        return self._request(
            "POST",
            "/run",
            {"point": point, "client": self.client_id, "wait": wait},
        )

    def submit_sweep(
        self,
        points: Optional[List[Dict[str, object]]] = None,
        grid: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        request: Dict[str, object] = {"client": self.client_id}
        if points is not None:
            request["points"] = [
                p.to_dict() if hasattr(p, "to_dict") else p for p in points
            ]
        if grid is not None:
            request["grid"] = grid
        return self._request("POST", "/sweep", request)

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/status/{job_id}")

    def wait_job(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.05
    ) -> Dict[str, object]:
        """Poll ``/status/<id>`` until the job completes."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") == "done":
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still running after {timeout}s")
            time.sleep(poll)
