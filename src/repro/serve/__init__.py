"""Simulation-as-a-service: the asyncio experiment server.

``python -m repro serve`` turns the sweep machinery into a long-running
shared resource: a JSON-over-HTTP API (``POST /run``, ``POST /sweep``,
``GET /status/<id>``, ``GET /metrics``) in front of

- the content-hash :class:`~repro.harness.sweep.ResultCache` (duplicate
  requests are answered without simulating),
- in-flight request coalescing (concurrent duplicates share one
  simulation),
- a bounded worker pool (:mod:`concurrent.futures` processes for the
  CPU-bound simulations, an asyncio frontend for the I/O),
- warm :class:`~repro.engine.snapshot.SnapshotPool` registries keyed by
  :func:`~repro.harness.sweep.prefix_key`, so popular experiment
  prefixes fork a quiesced snapshot instead of cold-starting,
- backpressure (bounded queue, ``429`` + ``Retry-After``), per-client
  token-bucket rate limits and graceful drain on shutdown.

Served results are byte-identical to ``python -m repro run`` — the
serving layer is a wall-clock optimization, never a semantics change.
See ``docs/SERVING.md``.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.scheduler import Backpressure, RateLimiter, Scheduler, TokenBucket
from repro.serve.server import ExperimentServer, ServeConfig

__all__ = [
    "Backpressure",
    "ExperimentServer",
    "RateLimiter",
    "Scheduler",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "TokenBucket",
]
