"""Load generator for the experiment server.

Replays a seeded, reproducible mix of duplicate and unique experiment
points against a running ``repro serve`` endpoint from many concurrent
client threads (each with its own client id and retrying
:class:`~repro.serve.client.ServeClient`), then reports:

- p50/p90/p99/max wall latency (measured client-side, 429 retries
  included — what a caller actually waits),
- ok/failed counts and absorbed-429 retry counts,
- server-side dedup and snapshot-pool provenance (scraped from
  ``/metrics`` and from per-response ``provenance``/``source`` fields),
- optional byte-identity spot checks: a sample of served outcomes is
  recomputed locally with :func:`~repro.harness.sweep.execute_point`
  and compared as canonical JSON.

Used by ``python -m repro loadgen``, the ``serve-smoke`` CI job and
``benchmarks/perf/test_serve_load.py``.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.serve.client import ServeClient, ServeError

#: The default unique-point population: every UVM system over a small
#: micro-workload grid — cheap at tiny scale, and all ``fir`` (or all
#: ``radix``) points share one prefix key, so the warm pool gets traffic.
DEFAULT_WORKLOADS = ("fir", "radix")
DEFAULT_SYSTEMS = ("UVM-opt", "UvmDiscard", "UvmDiscardLazy")
DEFAULT_RATIOS = (1.5, 2.0)


def default_points(scale: float = 0.03125) -> List[Dict[str, object]]:
    """The standard unique-point population (12 points)."""
    return [
        {
            "workload": workload,
            "system": system,
            "ratio": ratio,
            "scale": scale,
        }
        for workload in DEFAULT_WORKLOADS
        for system in DEFAULT_SYSTEMS
        for ratio in DEFAULT_RATIOS
    ]


def build_schedule(
    points: List[Dict[str, object]],
    requests: int,
    duplicate_fraction: float,
    seed: int,
) -> List[Dict[str, object]]:
    """A seeded request schedule mixing unique and duplicate points.

    The first pass cycles through the unique population; once every
    point has been issued at least once (or from the start, for
    ``duplicate_fraction`` of draws), requests re-draw uniformly from
    the already-issued set, which is what makes dedup observable.
    """
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError(f"duplicate fraction must be in [0, 1]: {duplicate_fraction}")
    rng = random.Random(seed)
    schedule: List[Dict[str, object]] = []
    issued: List[Dict[str, object]] = []
    fresh = list(points)
    for _ in range(requests):
        if fresh and (not issued or rng.random() >= duplicate_fraction):
            point = fresh.pop(0)
            issued.append(point)
        else:
            point = rng.choice(issued if issued else points)
        schedule.append(point)
    return schedule


@dataclass
class LoadReport:
    """Everything one load run measured."""

    requests: int
    clients: int
    ok: int = 0
    failed: int = 0
    retries_429: int = 0
    wall_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    #: provenance -> count, aggregated over per-request responses.
    provenance: Dict[str, int] = field(default_factory=dict)
    #: pool source -> count ("fork"/"cold"/"unpooled"), simulated only.
    sources: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    identity_checked: int = 0
    identity_mismatches: int = 0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        return self.percentile(0.90)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    @property
    def dedup_hits(self) -> int:
        return self.provenance.get("cache", 0) + self.provenance.get("coalesced", 0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "clients": self.clients,
            "ok": self.ok,
            "failed": self.failed,
            "retries_429": self.retries_429,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.ok / self.wall_seconds if self.wall_seconds else 0.0,
            "latency": {
                "p50": self.p50,
                "p90": self.p90,
                "p99": self.p99,
                "max": max(self.latencies) if self.latencies else 0.0,
                "mean": (
                    sum(self.latencies) / len(self.latencies)
                    if self.latencies
                    else 0.0
                ),
            },
            "provenance": dict(sorted(self.provenance.items())),
            "sources": dict(sorted(self.sources.items())),
            "dedup_hits": self.dedup_hits,
            "identity": {
                "checked": self.identity_checked,
                "mismatches": self.identity_mismatches,
            },
            "errors": self.errors[:20],
            "server_metrics": self.metrics,
        }

    def summary_lines(self) -> List[str]:
        latency = self.to_dict()["latency"]
        return [
            f"{self.ok}/{self.requests} ok ({self.failed} failed, "
            f"{self.retries_429} retried-429) from {self.clients} clients "
            f"in {self.wall_seconds:.2f}s",
            "latency p50 {p50:.4f}s  p90 {p90:.4f}s  p99 {p99:.4f}s  "
            "max {max:.4f}s".format(**latency),
            f"provenance {dict(sorted(self.provenance.items()))} "
            f"(dedup hits: {self.dedup_hits})",
            f"pool sources {dict(sorted(self.sources.items()))}",
            f"identity checks {self.identity_checked} "
            f"({self.identity_mismatches} mismatches)",
        ]


def run_load(
    url: str,
    requests: int = 100,
    clients: int = 8,
    duplicate_fraction: float = 0.5,
    seed: int = 0,
    points: Optional[List[Dict[str, object]]] = None,
    scale: float = 0.03125,
    timeout: float = 120.0,
    verify_identity: int = 0,
) -> LoadReport:
    """Fire ``requests`` across ``clients`` threads; gather a report.

    ``verify_identity`` re-simulates that many distinct served points
    locally and compares outcomes byte-for-byte (slow — keep small).
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1: {requests}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1: {clients}")
    population = points if points is not None else default_points(scale)
    schedule = build_schedule(population, requests, duplicate_fraction, seed)
    report = LoadReport(requests=requests, clients=clients)
    lock = threading.Lock()
    next_index = [0]
    served: Dict[str, Dict[str, object]] = {}  # canonical point JSON -> outcome
    handles = [
        ServeClient(url, client_id=f"load-{i}", timeout=timeout)
        for i in range(clients)
    ]
    # All clients open fire together, so peak server concurrency
    # reflects the configured client count rather than thread spawn lag.
    start_line = threading.Barrier(clients)

    def drive(client: ServeClient) -> None:
        start_line.wait()
        while True:
            with lock:
                index = next_index[0]
                if index >= len(schedule):
                    return
                next_index[0] += 1
            point = schedule[index]
            started = time.monotonic()
            try:
                response = client.run_point(point)
            except (ServeError, OSError, TimeoutError) as exc:
                with lock:
                    report.failed += 1
                    report.errors.append(f"{point}: {exc}")
                continue
            elapsed = time.monotonic() - started
            with lock:
                report.ok += 1
                report.latencies.append(elapsed)
                provenance = str(response.get("provenance"))
                report.provenance[provenance] = (
                    report.provenance.get(provenance, 0) + 1
                )
                source = response.get("source")
                if source:
                    report.sources[source] = report.sources.get(source, 0) + 1
                served.setdefault(
                    json.dumps(point, sort_keys=True), response["outcome"]
                )

    started = time.monotonic()
    threads = [
        threading.Thread(target=drive, args=(handle,), daemon=True)
        for handle in handles
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.monotonic() - started
    report.retries_429 = sum(handle.retries for handle in handles)

    if verify_identity > 0:
        from repro.harness.sweep import SweepPoint, _outcome_to_dict, execute_point

        for point_json, outcome in sorted(served.items())[:verify_identity]:
            local = _outcome_to_dict(
                execute_point(SweepPoint.from_dict(json.loads(point_json)))
            )
            report.identity_checked += 1
            if json.dumps(local, sort_keys=True) != json.dumps(
                outcome, sort_keys=True
            ):
                report.identity_mismatches += 1
                report.errors.append(f"identity mismatch for {point_json}")

    try:
        report.metrics = ServeClient(url, timeout=timeout).metrics()
    except (ServeError, OSError):
        report.metrics = {}
    return report
