"""Size and time units used throughout the simulator.

The simulator's clock is a ``float`` measured in **seconds**.  Sizes are
``int`` byte counts.  These helpers exist so that calibration constants in
the code read like the paper ("25 GB/s", "2 MiB pages", "48 us") instead of
raw exponents.

Note the deliberate distinction between decimal (GB, used for bandwidth and
traffic, matching the paper's GB/s figures) and binary (GiB/MiB/KiB, used
for memory capacities and page sizes, matching how GPUs report memory).
"""

from __future__ import annotations

# --- binary sizes (capacities, page sizes) ---------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# --- decimal sizes (traffic, bandwidth denominators) ------------------------
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# --- page sizes (§5.4) ------------------------------------------------------
SMALL_PAGE = 4 * KIB
BIG_PAGE = 2 * MIB
PAGES_PER_BLOCK = BIG_PAGE // SMALL_PAGE  # 512 4-KiB pages per 2-MiB block
FULL_BLOCK_MASK = (1 << PAGES_PER_BLOCK) - 1

# --- time -------------------------------------------------------------------
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0


def us(value: float) -> float:
    """Convert microseconds to simulator seconds."""
    return value * USEC


def ms(value: float) -> float:
    """Convert milliseconds to simulator seconds."""
    return value * MSEC


def to_gb(nbytes: int) -> float:
    """Express a byte count in decimal gigabytes (the paper's traffic unit)."""
    return nbytes / GB


def to_gib(nbytes: int) -> float:
    """Express a byte count in binary gibibytes (memory-capacity unit)."""
    return nbytes / GIB


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value - (value % alignment)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + alignment - remainder


def is_aligned(value: int, alignment: int) -> bool:
    """Whether ``value`` is a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value % alignment == 0
