"""Per-processor page tables with mapping-cost accounting.

The UVM driver keeps coherent page tables on the CPU and each GPU, with
every physical page exclusively mapped by one of them (§2.2).  NVIDIA GPUs
of the paper's era lack per-PTE access/dirty bits (§5), which is the
hardware limitation that forces `UvmDiscard` to *eagerly destroy* GPU
mappings: clearing PTEs and invalidating GPU TLBs over the interconnect is
what makes the eager implementation expensive, so this module meters those
operations precisely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.errors import MappingError
from repro.units import us


class PteState(enum.Enum):
    """State of a 2 MiB block's entry in one processor's page table."""

    UNMAPPED = "unmapped"
    MAPPED = "mapped"


@dataclass
class MappingCosts:
    """Time costs of page-table manipulation on one processor.

    Defaults are calibrated so that a batched eager discard costs ~1.05 us
    per 2 MiB block, matching Table 2 (UvmDiscard: 4 us at 2 MB down to
    70 us at 128 MB, i.e. amortized batching).
    """

    #: Establishing one 2 MiB PTE (page-table write + fence).
    map_block: float = field(default=us(0.8))
    #: Clearing one 2 MiB PTE.
    unmap_block: float = field(default=us(1.0))
    #: One TLB invalidation round-trip over the interconnect.  GPUs must be
    #: asked via the host-to-GPU channel and their acknowledgement awaited
    #: (§5.1); CPUs invalidate locally for much less.
    tlb_invalidate: float = field(default=us(1.5))
    #: Extra fixed cost per batched PTE operation command.
    batch_overhead: float = field(default=us(0.2))


class PageTable:
    """One processor's view of the unified address space, at 2 MiB granularity.

    Tracks which va_blocks (by block index) this processor currently maps,
    and accumulates counters for maps, unmaps and TLB shootdowns so the
    benchmarks can attribute eager-discard overhead.
    """

    __slots__ = (
        "processor",
        "costs",
        "_mapped",
        "map_count",
        "unmap_count",
        "tlb_invalidations",
    )

    def __init__(self, processor: str, costs: Optional[MappingCosts] = None) -> None:
        self.processor = processor
        self.costs = costs or MappingCosts()
        # A set of mapped block indices: residency checks are the single
        # hottest query in the simulator, and a set membership test beats
        # a dict-of-enum lookup plus identity compare.
        self._mapped: Set[int] = set()
        self.map_count = 0
        self.unmap_count = 0
        self.tlb_invalidations = 0

    def state(self, block_index: int) -> PteState:
        if block_index in self._mapped:
            return PteState.MAPPED
        return PteState.UNMAPPED

    def is_mapped(self, block_index: int) -> bool:
        return block_index in self._mapped

    @property
    def mapped_blocks(self) -> int:
        return len(self._mapped)

    def mapped_indices(self) -> "frozenset[int]":
        """Immutable snapshot of every mapped block index.

        The public accessor behind the driver inspection API; callers
        must never mutate ``_mapped`` directly.
        """
        return frozenset(self._mapped)

    def map_block(self, block_index: int) -> float:
        """Establish the 2 MiB mapping; returns the time cost in seconds."""
        mapped = self._mapped
        if block_index in mapped:
            raise MappingError(
                f"{self.processor}: block {block_index} is already mapped"
            )
        mapped.add(block_index)
        self.map_count += 1
        return self.costs.map_block + self.costs.batch_overhead

    def unmap_block(self, block_index: int, invalidate_tlb: bool = True) -> float:
        """Destroy the 2 MiB mapping; returns the time cost in seconds.

        ``invalidate_tlb=False`` models batched shootdowns where one
        invalidation covers many unmaps; the caller then charges
        :meth:`tlb_invalidate` once per batch.
        """
        mapped = self._mapped
        if block_index not in mapped:
            raise MappingError(f"{self.processor}: block {block_index} not mapped")
        mapped.discard(block_index)
        self.unmap_count += 1
        cost = self.costs.unmap_block
        if invalidate_tlb:
            cost += self.tlb_invalidate()
        return cost

    def tlb_invalidate(self) -> float:
        """Account one TLB invalidation; returns its time cost in seconds."""
        self.tlb_invalidations += 1
        return self.costs.tlb_invalidate

    def reset_counters(self) -> None:
        self.map_count = 0
        self.unmap_count = 0
        self.tlb_invalidations = 0
