"""Per-processor page tables with mapping-cost accounting.

The UVM driver keeps coherent page tables on the CPU and each GPU, with
every physical page exclusively mapped by one of them (§2.2).  NVIDIA GPUs
of the paper's era lack per-PTE access/dirty bits (§5), which is the
hardware limitation that forces `UvmDiscard` to *eagerly destroy* GPU
mappings: clearing PTEs and invalidating GPU TLBs over the interconnect is
what makes the eager implementation expensive, so this module meters those
operations precisely.

Two interchangeable residency representations live here:

- :class:`PageTable` — the original set-of-indices table; kept as the
  scalar reference implementation (``UvmDriverConfig.vectorized=False``
  and the differential property tests select it).
- :class:`BitmapPageTable` — a residency slab (``bytearray`` with one
  byte per 2 MiB block at a sliding origin; byte-per-block measured
  faster than bit-packing because scalar lookups need no shift/mask
  arithmetic, and a byte per block is still ~30x denser than a set
  entry) with the same scalar API plus NumPy-backed bulk
  :meth:`~BitmapPageTable.map_blocks` / :meth:`~BitmapPageTable.unmap_blocks`
  and a memcpy-cheap deepcopy, which is what makes engine snapshots fork
  quickly.  Cost *accumulation order* in the bulk operations is the same
  sequential per-block addition as the scalar loop, so simulated times
  are bit-identical between the two implementations.

:func:`make_page_table` selects one from the driver config knob.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from repro.errors import MappingError
from repro.units import us


class PteState(enum.Enum):
    """State of a 2 MiB block's entry in one processor's page table."""

    UNMAPPED = "unmapped"
    MAPPED = "mapped"


@dataclass
class MappingCosts:
    """Time costs of page-table manipulation on one processor.

    Defaults are calibrated so that a batched eager discard costs ~1.05 us
    per 2 MiB block, matching Table 2 (UvmDiscard: 4 us at 2 MB down to
    70 us at 128 MB, i.e. amortized batching).
    """

    #: Establishing one 2 MiB PTE (page-table write + fence).
    map_block: float = field(default=us(0.8))
    #: Clearing one 2 MiB PTE.
    unmap_block: float = field(default=us(1.0))
    #: One TLB invalidation round-trip over the interconnect.  GPUs must be
    #: asked via the host-to-GPU channel and their acknowledgement awaited
    #: (§5.1); CPUs invalidate locally for much less.
    tlb_invalidate: float = field(default=us(1.5))
    #: Extra fixed cost per batched PTE operation command.
    batch_overhead: float = field(default=us(0.2))


class PageTable:
    """One processor's view of the unified address space, at 2 MiB granularity.

    Tracks which va_blocks (by block index) this processor currently maps,
    and accumulates counters for maps, unmaps and TLB shootdowns so the
    benchmarks can attribute eager-discard overhead.
    """

    __slots__ = (
        "processor",
        "costs",
        "_mapped",
        "_map_cost",
        "_unmap_cost",
        "_unmap_tlb_cost",
        "map_count",
        "unmap_count",
        "tlb_invalidations",
    )

    def __init__(self, processor: str, costs: Optional[MappingCosts] = None) -> None:
        self.processor = processor
        self.costs = costs or MappingCosts()
        # A set of mapped block indices: residency checks are the single
        # hottest query in the simulator, and a set membership test beats
        # a dict-of-enum lookup plus identity compare.
        self._mapped: Set[int] = set()
        # Pre-summed per-operation costs; MappingCosts is fixed for the
        # table's lifetime, and chasing three dataclass attributes per
        # map/unmap showed up in the fault-service profile.
        self._map_cost = self.costs.map_block + self.costs.batch_overhead
        self._unmap_cost = self.costs.unmap_block
        self._unmap_tlb_cost = self.costs.unmap_block + self.costs.tlb_invalidate
        self.map_count = 0
        self.unmap_count = 0
        self.tlb_invalidations = 0

    def state(self, block_index: int) -> PteState:
        if block_index in self._mapped:
            return PteState.MAPPED
        return PteState.UNMAPPED

    def is_mapped(self, block_index: int) -> bool:
        return block_index in self._mapped

    @property
    def mapped_blocks(self) -> int:
        return len(self._mapped)

    def mapped_indices(self) -> "frozenset[int]":
        """Immutable snapshot of every mapped block index.

        The public accessor behind the driver inspection API; callers
        must never mutate ``_mapped`` directly.
        """
        return frozenset(self._mapped)

    def map_block(self, block_index: int) -> float:
        """Establish the 2 MiB mapping; returns the time cost in seconds."""
        mapped = self._mapped
        if block_index in mapped:
            raise MappingError(
                f"{self.processor}: block {block_index} is already mapped"
            )
        mapped.add(block_index)
        self.map_count += 1
        return self._map_cost

    def unmap_block(self, block_index: int, invalidate_tlb: bool = True) -> float:
        """Destroy the 2 MiB mapping; returns the time cost in seconds.

        ``invalidate_tlb=False`` models batched shootdowns where one
        invalidation covers many unmaps; the caller then charges
        :meth:`tlb_invalidate` once per batch.
        """
        mapped = self._mapped
        if block_index not in mapped:
            raise MappingError(f"{self.processor}: block {block_index} not mapped")
        mapped.discard(block_index)
        self.unmap_count += 1
        if invalidate_tlb:
            self.tlb_invalidations += 1
            return self._unmap_tlb_cost
        return self._unmap_cost

    def tlb_invalidate(self) -> float:
        """Account one TLB invalidation; returns its time cost in seconds."""
        self.tlb_invalidations += 1
        return self.costs.tlb_invalidate

    def map_blocks(self, indices: "Sequence[int]") -> float:
        """Map every index in ``indices``; returns the summed time cost."""
        cost = 0.0
        for index in indices:
            cost += self.map_block(index)
        return cost

    def unmap_blocks(
        self, indices: "Sequence[int]", invalidate_tlb: bool = True
    ) -> float:
        """Unmap every index in ``indices``; returns the summed time cost."""
        cost = 0.0
        for index in indices:
            cost += self.unmap_block(index, invalidate_tlb)
        return cost

    def reset_counters(self) -> None:
        self.map_count = 0
        self.unmap_count = 0
        self.tlb_invalidations = 0


#: Bulk operations switch to NumPy above this many indices; below it a
#: plain Python loop over the bitmap wins (array creation overhead).
_VECTOR_THRESHOLD = 32

#: Bitmap slabs grow in whole bytes; keep the origin byte-aligned.
_SLAB_ALIGN = 8


class BitmapPageTable:
    """Residency-slab page table: one byte per 2 MiB block.

    Block indices are global (``va // BIG_PAGE`` of a 64-bit VA base), so
    the slab covers ``[origin, origin + len(slab))`` and re-anchors lazily
    on first use.  The driver's working sets are contiguous va ranges, so
    the slab stays dense and small (one byte per block versus one ~32-byte
    set entry per block), and ``deepcopy`` — the heart of
    ``EngineSnapshot.fork()`` — degenerates to a bytearray copy.

    A byte (not a bit) per block: scalar ``is_mapped``/``map_block`` are
    the hottest driver operations, and byte indexing needs no Python-level
    shift/mask arithmetic — measured faster than both bit-packing and the
    set-based reference.  Bulk operations become plain NumPy fancy
    indexing on the same buffer.
    """

    __slots__ = (
        "processor",
        "costs",
        "_origin",
        "_bits",
        "_limit",
        "_count",
        "_map_cost",
        "_unmap_cost",
        "_unmap_tlb_cost",
        "map_count",
        "unmap_count",
        "tlb_invalidations",
    )

    def __init__(self, processor: str, costs: Optional[MappingCosts] = None) -> None:
        self.processor = processor
        self.costs = costs or MappingCosts()
        self._origin = 0  # re-anchored on first map while the slab is empty
        self._bits = bytearray()
        self._limit = 0  # == len(self._bits); cached for the hot range check
        self._count = 0
        self._map_cost = self.costs.map_block + self.costs.batch_overhead
        self._unmap_cost = self.costs.unmap_block
        self._unmap_tlb_cost = self.costs.unmap_block + self.costs.tlb_invalidate
        self.map_count = 0
        self.unmap_count = 0
        self.tlb_invalidations = 0

    # -- slab management -------------------------------------------------

    def _ensure(self, index: int) -> int:
        """Grow the slab to cover ``index``; returns the slab offset."""
        if self._limit == 0:
            # First touch anchors the slab (aligned so left growth pads
            # whole aligned chunks).
            self._origin = (index // _SLAB_ALIGN) * _SLAB_ALIGN
            self._bits = bytearray(_SLAB_ALIGN)
        origin = self._origin
        if index < origin:
            new_origin = (index // _SLAB_ALIGN) * _SLAB_ALIGN
            self._bits = bytearray(origin - new_origin) + self._bits
            self._origin = origin = new_origin
        offset = index - origin
        if offset >= len(self._bits):
            self._bits.extend(bytes(offset + 1 - len(self._bits)))
        self._limit = len(self._bits)
        return offset

    # -- scalar API (same contract as PageTable) -------------------------

    def state(self, block_index: int) -> PteState:
        if self.is_mapped(block_index):
            return PteState.MAPPED
        return PteState.UNMAPPED

    def is_mapped(self, block_index: int) -> bool:
        # _limit is 0 until the slab is anchored, so the range check alone
        # also covers the unanchored state.
        offset = block_index - self._origin
        return 0 <= offset < self._limit and self._bits[offset] != 0

    @property
    def mapped_blocks(self) -> int:
        return self._count

    def mapped_indices(self) -> "frozenset[int]":
        """Immutable snapshot of every mapped block index."""
        if self._count == 0:
            return frozenset()
        arr = np.frombuffer(self._bits, dtype=np.uint8)
        return frozenset((np.nonzero(arr)[0] + self._origin).tolist())

    def map_block(self, block_index: int) -> float:
        """Establish the 2 MiB mapping; returns the time cost in seconds."""
        # In-slab fast path; _ensure only on first touch or growth.
        offset = block_index - self._origin
        if not 0 <= offset < self._limit:
            offset = self._ensure(block_index)
        bits = self._bits
        if bits[offset]:
            raise MappingError(
                f"{self.processor}: block {block_index} is already mapped"
            )
        bits[offset] = 1
        self._count += 1
        self.map_count += 1
        return self._map_cost

    def unmap_block(self, block_index: int, invalidate_tlb: bool = True) -> float:
        """Destroy the 2 MiB mapping; returns the time cost in seconds."""
        offset = block_index - self._origin
        if not 0 <= offset < self._limit or not self._bits[offset]:
            raise MappingError(f"{self.processor}: block {block_index} not mapped")
        self._bits[offset] = 0
        self._count -= 1
        self.unmap_count += 1
        if invalidate_tlb:
            self.tlb_invalidations += 1
            return self._unmap_tlb_cost
        return self._unmap_cost

    def tlb_invalidate(self) -> float:
        """Account one TLB invalidation; returns its time cost in seconds."""
        self.tlb_invalidations += 1
        return self.costs.tlb_invalidate

    # -- bulk API --------------------------------------------------------

    def map_blocks(self, indices: Sequence[int]) -> float:
        """Map every index in ``indices``; returns the summed time cost.

        Exactly equivalent to mapping one by one (same raise-on-mapped
        semantics, same sequential cost accumulation) but the PTEs are
        written in one vectorized pass for large batches.
        """
        n = len(indices)
        if n == 0:
            return 0.0
        if n < _VECTOR_THRESHOLD:
            cost = 0.0
            for index in indices:
                cost += self.map_block(index)
            return cost
        self._ensure(max(indices))
        offsets = np.asarray(indices, dtype=np.int64) - self._origin
        if offsets.min() < 0:
            # A left-growth mixed into the batch: rare — take the loop.
            cost = 0.0
            for index in indices:
                cost += self.map_block(index)
            return cost
        arr = np.frombuffer(self._bits, dtype=np.uint8)
        if np.any(arr[offsets]) or np.unique(offsets).size != n:
            # At least one index is already mapped (or duplicated inside
            # the batch): replay scalar to raise on exactly the block the
            # reference implementation would.
            cost = 0.0
            for index in indices:
                cost += self.map_block(index)
            return cost
        arr[offsets] = 1
        self._count += n
        self.map_count += n
        cost = 0.0
        map_cost = self._map_cost
        for _ in range(n):
            cost += map_cost
        return cost

    def unmap_blocks(
        self, indices: Sequence[int], invalidate_tlb: bool = True
    ) -> float:
        """Unmap every index in ``indices``; returns the summed time cost."""
        n = len(indices)
        if n == 0:
            return 0.0
        if n < _VECTOR_THRESHOLD or self._limit == 0:
            cost = 0.0
            for index in indices:
                cost += self.unmap_block(index, invalidate_tlb)
            return cost
        offsets = np.asarray(indices, dtype=np.int64) - self._origin
        if offsets.min() < 0 or offsets.max() >= self._limit:
            cost = 0.0
            for index in indices:
                cost += self.unmap_block(index, invalidate_tlb)
            return cost
        arr = np.frombuffer(self._bits, dtype=np.uint8)
        if not np.all(arr[offsets]) or np.unique(offsets).size != n:
            cost = 0.0
            for index in indices:
                cost += self.unmap_block(index, invalidate_tlb)
            return cost
        arr[offsets] = 0
        self._count -= n
        self.unmap_count += n
        if invalidate_tlb:
            self.tlb_invalidations += n
            per = self._unmap_tlb_cost
        else:
            per = self._unmap_cost
        cost = 0.0
        for _ in range(n):
            cost += per
        return cost

    def reset_counters(self) -> None:
        self.map_count = 0
        self.unmap_count = 0
        self.tlb_invalidations = 0


#: Either implementation satisfies the same protocol.
AnyPageTable = Union[PageTable, BitmapPageTable]


def make_page_table(
    processor: str,
    costs: Optional[MappingCosts] = None,
    vectorized: bool = True,
) -> AnyPageTable:
    """Select the page-table implementation from the driver config knob."""
    if vectorized:
        return BitmapPageTable(processor, costs)
    return PageTable(processor, costs)
