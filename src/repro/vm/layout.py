"""Unified virtual address space layout.

A single :class:`AddressSpace` spans host and all devices — the defining
property of UVM (§2.1: "pointers are valid everywhere").  Managed
allocations are carved from it as 2 MiB-aligned :class:`VaRange` spans so
that each allocation decomposes exactly into the driver's 2 MiB va_blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import InvalidAddressError
from repro.units import BIG_PAGE, align_up

#: Managed allocations start at a recognizable non-zero base, mirroring the
#: real UVM region of the address space.
UVM_BASE = 0x10_0000_0000


@dataclass(frozen=True)
class VaRange:
    """A half-open virtual address range ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise InvalidAddressError(f"negative start address: {self.start:#x}")
        if self.length < 0:
            raise InvalidAddressError(f"negative range length: {self.length}")

    @property
    def end(self) -> int:
        return self.start + self.length

    def __contains__(self, address: int) -> bool:
        return self.start <= address < self.end

    def contains_range(self, other: "VaRange") -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "VaRange") -> bool:
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "VaRange") -> "VaRange":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end <= start:
            return VaRange(start, 0)
        return VaRange(start, end - start)

    def subrange(self, offset: int, length: int) -> "VaRange":
        """The range ``[start+offset, start+offset+length)``; bounds-checked."""
        if offset < 0 or length < 0 or offset + length > self.length:
            raise InvalidAddressError(
                f"subrange(offset={offset}, length={length}) outside {self}"
            )
        return VaRange(self.start + offset, length)

    def block_span(self) -> Tuple[int, int]:
        """First and one-past-last 2 MiB block index covered by this range."""
        if self.length == 0:
            return (self.start // BIG_PAGE, self.start // BIG_PAGE)
        first = self.start // BIG_PAGE
        last = (self.end - 1) // BIG_PAGE + 1
        return (first, last)

    def blocks(self) -> Iterator[int]:
        """Iterate the 2 MiB block indices this range touches."""
        first, last = self.block_span()
        return iter(range(first, last))

    def full_blocks(self) -> Iterator[int]:
        """Iterate only the block indices *fully* covered by this range.

        §5.4: "the discard operation prefers full 2 MiB-aligned virtual
        regions and sometimes ignores partial ones" — this is the filter
        that implements that preference.
        """
        first = align_up(self.start, BIG_PAGE) // BIG_PAGE
        last = self.end // BIG_PAGE
        return iter(range(first, last))

    def num_blocks(self) -> int:
        first, last = self.block_span()
        return last - first

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VaRange({self.start:#x}, len={self.length:#x})"


class AddressSpace:
    """Bump allocator over the unified virtual address space.

    Virtual address space is effectively unlimited (57-bit on real
    hardware) so ranges are never recycled; `free` only validates the
    handle.  Keeping allocation monotone makes every simulated address
    stable for the lifetime of a run, which the instrumentation exploits.
    """

    def __init__(self, base: int = UVM_BASE) -> None:
        self._next = align_up(base, BIG_PAGE)
        self._live: List[VaRange] = []

    @property
    def live_ranges(self) -> Tuple[VaRange, ...]:
        return tuple(self._live)

    def allocate(self, nbytes: int) -> VaRange:
        """Reserve a 2 MiB-aligned range of at least ``nbytes`` bytes.

        The range's ``length`` is the requested byte count; the *next*
        allocation is placed at the following 2 MiB boundary so distinct
        allocations never share a va_block (matching
        ``cudaMallocManaged``'s alignment behaviour for large buffers).
        """
        if nbytes <= 0:
            raise InvalidAddressError(f"allocation size must be positive: {nbytes}")
        rng = VaRange(self._next, nbytes)
        self._next = align_up(rng.end, BIG_PAGE)
        self._live.append(rng)
        return rng

    def free(self, rng: VaRange) -> None:
        """Release a previously allocated range."""
        try:
            self._live.remove(rng)
        except ValueError:
            raise InvalidAddressError(f"free of unknown range {rng!r}")

    def find(self, address: int) -> VaRange:
        """The live range containing ``address``."""
        for rng in self._live:
            if address in rng:
                return rng
        raise InvalidAddressError(f"address {address:#x} is not mapped")
