"""Unified virtual memory substrate.

Provides the unified virtual address space shared by host and devices
(§2.1), a per-processor page table with 2 MiB / 4 KiB entries, and the cost
accounting for mapping, unmapping and TLB invalidation that makes the
eager `UvmDiscard` implementation expensive (§5.1).
"""

from repro.vm.layout import AddressSpace, VaRange
from repro.vm.page_table import PageTable, PteState

__all__ = ["AddressSpace", "VaRange", "PageTable", "PteState"]
