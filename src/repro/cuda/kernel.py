"""Kernel specifications.

A simulated GPU kernel is described by *what memory it touches and how*:
for each buffer, an :class:`~repro.access.AccessMode` (read / full
overwrite / read-modify-write) and an access pattern that orders the
buffer's va_blocks into fault "waves".  This is all the memory system can
observe of a real kernel, and it is exactly the information that
determines redundant memory transfers (§3).

Compute time comes from a FLOP count divided by the device's sustained
throughput, or an explicit duration.  An optional Python ``fn`` runs at
kernel completion in functional simulations to produce real results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.access import AccessMode
from repro.cuda.memory import ManagedBuffer
from repro.errors import ConfigurationError
from repro.gpu.access import AccessPattern, SequentialPattern
from repro.vm.layout import VaRange


@dataclass
class BufferAccess:
    """One buffer operand of a kernel."""

    buffer: ManagedBuffer
    mode: AccessMode
    #: Restrict the access to part of the buffer (e.g. FIR's sliding
    #: window); ``None`` means the whole buffer.
    rng: Optional[VaRange] = None
    pattern: AccessPattern = field(default_factory=SequentialPattern)

    def blocks(self):
        return self.buffer.blocks_in(self.rng)


@dataclass
class KernelSpec:
    """A launchable GPU kernel."""

    name: str
    accesses: Sequence[BufferAccess]
    #: Total floating-point work; compute time = flops / effective_flops.
    flops: float = 0.0
    #: Explicit compute time in seconds; overrides ``flops`` when set.
    duration: Optional[float] = None
    #: Number of fault waves the kernel's footprint is processed in.
    #: More waves = finer interleaving of faulting and compute.
    waves: int = 1
    #: Optional functional body, called once at completion with no
    #: arguments (closures capture the buffers' arrays).
    fn: Optional[Callable[[], None]] = None

    def __post_init__(self) -> None:
        if self.waves < 1:
            raise ConfigurationError(f"kernel {self.name!r}: waves must be >= 1")
        if self.duration is None and self.flops < 0:
            raise ConfigurationError(f"kernel {self.name!r}: negative flops")

    def compute_seconds(self, effective_flops: float) -> float:
        """Total compute time on a device with ``effective_flops``."""
        if self.duration is not None:
            return self.duration
        if effective_flops <= 0:
            raise ConfigurationError(
                f"effective_flops must be positive: {effective_flops}"
            )
        return self.flops / effective_flops


def launch_bounds(kernel: KernelSpec) -> int:
    """Total bytes of managed memory the kernel's accesses cover."""
    total = 0
    for access in kernel.accesses:
        rng = access.rng if access.rng is not None else access.buffer.va_range
        total += rng.length
    return total


AccessLike = Union[BufferAccess, tuple]


def access(
    buffer: ManagedBuffer,
    mode: AccessMode,
    rng: Optional[VaRange] = None,
    pattern: Optional[AccessPattern] = None,
) -> BufferAccess:
    """Convenience constructor mirroring CUDA kernel argument lists."""
    return BufferAccess(
        buffer=buffer,
        mode=mode,
        rng=rng,
        pattern=pattern if pattern is not None else SequentialPattern(),
    )
