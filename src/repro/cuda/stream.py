"""CUDA streams and events.

A stream serializes the operations enqueued on it — kernel launches,
prefetches, discards, memcpys — while separate streams proceed
concurrently, contending only for physical resources (SM engine, copy
engines).  §4.2 of the paper: "UvmDiscard should be ordered like a memory
operation with other CUDA APIs and computation"; stream order is exactly
that ordering.

Implementation: each stream keeps the :class:`~repro.engine.core.Process`
of its most recently enqueued operation; a new operation's process first
waits on its predecessor, so the chain executes in FIFO order without any
explicit queue.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.engine.core import Environment, Event, Process
from repro.instrument.trace import NULL_TRACER


class CudaEvent:
    """A CUDA event: recorded on one stream, awaitable from another."""

    def __init__(self, env: Environment, name: str = "event") -> None:
        self.env = env
        self.name = name
        self._fired: Optional[Event] = None

    def _bind(self, completion: Event) -> None:
        self._fired = completion

    @property
    def recorded(self) -> bool:
        return self._fired is not None

    def wait_target(self) -> Event:
        if self._fired is None:
            # Waiting on an unrecorded event completes immediately, as in
            # CUDA where cudaStreamWaitEvent on a fresh event is a no-op.
            immediate = Event(self.env)
            immediate.succeed(None)
            return immediate
        return self._fired


class CudaStream:
    """One in-order CUDA stream."""

    def __init__(self, env: Environment, name: str = "stream") -> None:
        self.env = env
        self.name = name
        self._tail: Optional[Process] = None
        self.ops_enqueued = 0
        #: Simulated-time tracer; labeled operations become spans on a
        #: per-stream track when one is installed.
        self.tracer = NULL_TRACER

    def enqueue(
        self,
        op_factory: Callable[[], Generator],
        label: Optional[str] = None,
    ) -> Process:
        """Append an async operation; returns its process (an Event).

        ``label``, when given, names the operation on this stream's trace
        track (the span covers execution, not time spent queued behind
        the stream's predecessor).
        """
        predecessor = self._tail

        def runner() -> Generator:
            if predecessor is not None:
                yield predecessor
            tracer = self.tracer
            if label is not None and tracer.enabled:
                started = self.env.now
                result = yield from op_factory()
                tracer.span(
                    f"stream/{self.name}",
                    label,
                    started,
                    self.env.now,
                    category="stream",
                )
                return result
            result = yield from op_factory()
            return result

        process = self.env.process(runner())
        self._tail = process
        self.ops_enqueued += 1
        return process

    def record_event(self, event: CudaEvent) -> None:
        """`cudaEventRecord`: event fires when work enqueued so far finishes."""
        tail = self._tail

        def marker() -> Generator:
            if tail is not None:
                yield tail
            return None

        event._bind(self.env.process(marker()))

    def wait_event(self, event: CudaEvent) -> None:
        """`cudaStreamWaitEvent`: later ops wait for ``event``."""
        self.enqueue(lambda: self._wait(event))

    @staticmethod
    def _wait(event: CudaEvent) -> Generator:
        yield event.wait_target()

    def wait_for(self, dependency: Event) -> None:
        """Make later ops on this stream wait for a raw engine event.

        Convenience for cross-stream dependencies on an operation's
        process handle (e.g. "kernel must not start before its window's
        prefetch finished").
        """
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(
                "program",
                "wait",
                self.env.now,
                category="program",
                args={"stream": self.name, "on": tracer.op_for(dependency)},
            )
        self.enqueue(lambda: self._yield_one(dependency))

    @staticmethod
    def _yield_one(dependency: Event) -> Generator:
        yield dependency

    def synchronize(self) -> Generator:
        """Host-side `cudaStreamSynchronize`: wait for all enqueued work."""
        if self._tail is not None:
            yield self._tail

    @property
    def idle(self) -> bool:
        return self._tail is None or self._tail.triggered


def synchronize_all(env: Environment, streams: List[CudaStream]) -> Generator:
    """`cudaDeviceSynchronize`: wait for every stream to drain."""
    tails = [s._tail for s in streams if s._tail is not None]
    if len(tails) == 1:
        # Single-stream programs (most of the paper's workloads) need no
        # AllOf fan-in event — wait on the one tail directly.
        yield tails[0]
    elif tails:
        yield env.all_of(tails)
