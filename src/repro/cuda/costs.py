"""CUDA API call cost model (Table 2).

Table 2 of the paper measures the synchronous cost of `cudaMalloc`,
`cudaFree` and `UvmDiscard` for buffers of 2-128 MB.  `UvmDiscard`'s cost
is *computed* by the simulator from its unmapping work; the allocation
calls, whose cost lives inside the closed CUDA runtime, are modelled here
by log-size interpolation of the paper's measurements.  These costs are
what makes the manual alloc/free swap strategy of Listing 5 expensive and
motivated PyTorch's caching allocator — both reproduced in
:mod:`repro.baselines`.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.units import MB, us

#: (buffer size, cost in seconds) calibration points from Table 2.
MALLOC_POINTS: Tuple[Tuple[int, float], ...] = (
    (2 * MB, us(48)),
    (8 * MB, us(184)),
    (32 * MB, us(726)),
    (128 * MB, us(939)),
)

FREE_POINTS: Tuple[Tuple[int, float], ...] = (
    (2 * MB, us(32)),
    (8 * MB, us(38)),
    (32 * MB, us(63)),
    (128 * MB, us(1184)),
)


def _interpolate(points: Sequence[Tuple[int, float]], nbytes: int) -> float:
    """Piecewise-linear interpolation in log2(size) space.

    Below the first point, costs are clamped to the smallest measurement
    (there is a floor of fixed API overhead); above the last point the
    final segment's slope is extrapolated.
    """
    if nbytes <= 0:
        raise ValueError(f"size must be positive: {nbytes}")
    if nbytes <= points[0][0]:
        return points[0][1]
    x = math.log2(nbytes)
    xs: List[float] = [math.log2(size) for size, _ in points]
    ys: List[float] = [cost for _, cost in points]
    for i in range(1, len(points)):
        if x <= xs[i]:
            t = (x - xs[i - 1]) / (xs[i] - xs[i - 1])
            return ys[i - 1] + t * (ys[i] - ys[i - 1])
    slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
    return max(ys[-1], ys[-1] + slope * (x - xs[-1]))


class ApiCostModel:
    """Synchronous host-side costs of CUDA memory-management API calls."""

    #: Cost of `cudaMallocManaged`: a VA-space reservation only — physical
    #: memory is populated lazily on first touch (Figure 1 ①).
    MALLOC_MANAGED = us(6.0)

    #: Fixed cost of enqueuing any async operation onto a stream.
    ENQUEUE = us(1.5)

    def malloc_device(self, nbytes: int) -> float:
        """`cudaMalloc` cost in seconds (Table 2 row 1)."""
        return _interpolate(MALLOC_POINTS, nbytes)

    def free_device(self, nbytes: int) -> float:
        """`cudaFree` cost in seconds (Table 2 row 2)."""
        return _interpolate(FREE_POINTS, nbytes)

    def malloc_managed(self, nbytes: int) -> float:
        """`cudaMallocManaged` cost in seconds (size-independent)."""
        if nbytes <= 0:
            raise ValueError(f"size must be positive: {nbytes}")
        return self.MALLOC_MANAGED
