"""CUDA runtime facade.

The application-facing layer of the simulator: devices, streams, managed
memory (`cudaMallocManaged`), prefetch (`cudaMemPrefetchAsync`), the new
discard calls (`UvmDiscardAsync` / `UvmDiscardLazyAsync`), kernel launch,
and the explicit-copy API used by the No-UVM baselines.

Programs are written as host generators receiving a
:class:`~repro.cuda.runtime.CudaRuntime` — see Listing 2/3 of the paper
and ``examples/quickstart.py`` for the idiom.
"""

from repro.cuda.costs import ApiCostModel
from repro.cuda.device import GpuSpec, HostSpec, a100_40gb, gtx_1070, rtx_3080ti
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.memory import DeviceBuffer, ManagedBuffer
from repro.cuda.runtime import CudaRuntime
from repro.cuda.stream import CudaStream

__all__ = [
    "ApiCostModel",
    "GpuSpec",
    "HostSpec",
    "rtx_3080ti",
    "gtx_1070",
    "a100_40gb",
    "BufferAccess",
    "KernelSpec",
    "ManagedBuffer",
    "DeviceBuffer",
    "CudaRuntime",
    "CudaStream",
]
