"""The CUDA runtime facade — the library's main entry point.

Wires together the discrete-event engine, the UVM driver, the kernel
executor and the discard managers into one object whose API mirrors the
CUDA calls the paper's listings use:

==============================  =========================================
Paper / CUDA                    :class:`CudaRuntime`
==============================  =========================================
``cudaMallocManaged``           :meth:`malloc_managed`
``cudaMemPrefetchAsync``        :meth:`prefetch_async`
``UvmDiscardAsync``             :meth:`discard_async` (mode="eager")
``UvmDiscardLazyAsync``         :meth:`discard_async` (mode="lazy")
kernel launch ``<<<...>>>``     :meth:`launch`
``cudaMalloc`` / ``cudaFree``   :meth:`malloc_device` / :meth:`free_device`
``cudaMemcpyAsync``             :meth:`memcpy_async`
``cudaDeviceSynchronize``       :meth:`synchronize`
host code touching UVM memory   :meth:`host_write` / :meth:`host_read`
==============================  =========================================

Programs are generators receiving the runtime (see ``examples/``)::

    def program(cuda):
        buf = cuda.malloc_managed(64 * MIB, "A")
        yield from cuda.host_write(buf)                  # initialize on CPU
        cuda.prefetch_async(buf, cuda.gpu.name)          # overlap H2D
        cuda.launch(my_kernel)
        cuda.discard_async(buf, mode="eager")            # data now dead
        yield from cuda.synchronize()

    runtime = CudaRuntime()
    runtime.run(program)
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from repro.access import AccessMode
from repro.core.discard import DiscardManager, DiscardOutcome
from repro.core.eager import UvmDiscard
from repro.core.lazy import UvmDiscardLazy
from repro.core.semantics import DataOracle
from repro.cuda.costs import ApiCostModel
from repro.cuda.device import GpuSpec, HostSpec, rtx_3080ti, ryzen_3900x
from repro.cuda.kernel import KernelSpec
from repro.cuda.memory import DeviceBuffer, ManagedBuffer
from repro.cuda.stream import CudaStream, synchronize_all
from repro.driver.config import UvmDriverConfig
from repro.driver.driver import CPU, UvmDriver
from repro.engine.core import Environment, Process
from repro.errors import ConfigurationError, SimulationError
from repro.gpu.access import IrregularPattern, SequentialPattern, StridedPattern
from repro.gpu.executor import GpuExecutor
from repro.instrument.trace import NULL_TRACER
from repro.instrument.traffic import TransferDirection, TransferReason
from repro.interconnect.link import Link
from repro.interconnect.pcie import pcie_gen4
from repro.memsim.zeroing import ZeroFillModel
from repro.vm.layout import AddressSpace, VaRange


def _pattern_fields(pattern) -> Dict[str, object]:
    """Serialize an access pattern for the ``program`` trace channel.

    Covers the built-in pattern vocabulary; custom
    :class:`~repro.gpu.access.AccessPattern` subclasses get their class
    name as the kind (trace export still works; replay rejects kinds it
    cannot reconstruct).
    """
    if isinstance(pattern, IrregularPattern):
        return {
            "kind": "irregular",
            "passes": pattern.passes,
            "seed": pattern.seed,
        }
    if isinstance(pattern, StridedPattern):
        return {"kind": "strided"}
    if isinstance(pattern, SequentialPattern):
        return {"kind": "sequential"}
    return {"kind": type(pattern).__name__}


class CudaRuntime:
    """A simulated single-GPU CUDA platform with UVM and discard support."""

    def __init__(
        self,
        gpu: Optional[GpuSpec] = None,
        host: Optional[HostSpec] = None,
        link: Optional[Link] = None,
        driver_config: Optional[UvmDriverConfig] = None,
        oracle: Optional[DataOracle] = None,
        env: Optional[Environment] = None,
        gpus: Optional[List[GpuSpec]] = None,
        p2p_link: Optional[Link] = None,
        remote_access: bool = False,
    ) -> None:
        if gpus is not None and gpu is not None:
            raise ConfigurationError("pass either gpu or gpus, not both")
        specs = list(gpus) if gpus else [gpu or rtx_3080ti()]
        if len({s.name for s in specs}) != len(specs):
            raise ConfigurationError("GPU names must be unique")
        self.env = env or Environment()
        self.gpu = specs[0]
        self.gpus: Dict[str, GpuSpec] = {s.name: s for s in specs}
        self.host = host or ryzen_3900x()
        self.link = link or pcie_gen4()
        self.driver = UvmDriver(
            self.env, self.link, driver_config, oracle, p2p_link=p2p_link
        )
        self.executors: Dict[str, GpuExecutor] = {}
        for spec in specs:
            self.driver.register_gpu(
                spec.name,
                spec.memory_bytes,
                ZeroFillModel(spec.zero_bandwidth),
            )
            self.executors[spec.name] = GpuExecutor(
                self.env, self.driver, spec, remote_access=remote_access
            )
        self.executor = self.executors[self.gpu.name]
        self.address_space = AddressSpace()
        self.costs = ApiCostModel()
        self.default_stream = CudaStream(self.env, "stream0")
        self._streams: List[CudaStream] = [self.default_stream]
        #: Simulated-time tracer; held on the runtime so streams created
        #: after :meth:`Tracer.install` inherit it.
        self.tracer = NULL_TRACER
        self.discard_managers: Dict[str, DiscardManager] = {
            "eager": UvmDiscard(self.driver),
            "lazy": UvmDiscardLazy(self.driver),
        }
        self._buffer_counter = 0
        #: Live managed allocations, in allocation order (see
        #: :meth:`managed_buffers`).
        self._managed: List[ManagedBuffer] = []
        #: Start of the measured region (see :meth:`begin_measurement`).
        self.measure_start = 0.0
        #: Scratch namespace for split-phase programs: a setup prefix
        #: stores its buffers here and the measured body retrieves them.
        #: Lives on the runtime (not in generator locals) so snapshots
        #: capture it and forks see forked buffers.
        self.session: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # snapshot/fork support
    # ------------------------------------------------------------------

    def snapshot_precheck(self) -> None:
        """Raise :class:`~repro.errors.SnapshotError` unless this runtime
        is quiescent and safe to deep-snapshot (see
        :mod:`repro.engine.snapshot`)."""
        from repro.errors import SnapshotError

        if not self.env.quiescent:
            raise SnapshotError(
                "runtime snapshot with events still on the heap; drain the "
                "simulation to quiescence first"
            )
        for stream in self._streams:
            tail = stream._tail
            if tail is not None and tail.callbacks is not None:
                raise SnapshotError(
                    f"runtime snapshot with unfinished work on stream "
                    f"{stream.name!r}"
                )
        self.driver.snapshot_precheck()

    # ------------------------------------------------------------------
    # program-op trace channel
    # ------------------------------------------------------------------

    def _program_op(self, op: str, handle: Optional[Process] = None, **fields) -> None:
        """Record one runtime-API call on the ``program`` track.

        The channel is the replayable shadow of the host program: each
        record carries the arguments :mod:`repro.workloads.replay` needs
        to re-enqueue the op against a fresh runtime.  Callers guard on
        ``self.tracer.enabled`` so untraced runs pay nothing.
        """
        record_id = self.tracer.instant(
            "program", op, self.env.now, category="program", args=fields
        )
        if handle is not None:
            self.tracer.note_op(handle, record_id)

    @staticmethod
    def _rng_fields(buffer: ManagedBuffer, rng: Optional[VaRange]):
        """``(offset, length)`` of ``rng`` relative to the buffer start."""
        if rng is None:
            return 0, buffer.nbytes
        return rng.start - buffer.va_range.start, rng.length

    def managed_buffers(self) -> List[ManagedBuffer]:
        """Live managed allocations, in allocation order."""
        return [buffer for buffer in self._managed if not buffer.freed]

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------

    def create_stream(self, name: Optional[str] = None) -> CudaStream:
        """`cudaStreamCreate`."""
        stream = CudaStream(self.env, name or f"stream{len(self._streams)}")
        stream.tracer = self.tracer
        self._streams.append(stream)
        if self.tracer.enabled:
            self._program_op("stream", name=stream.name)
        return stream

    def streams(self) -> List[CudaStream]:
        """All streams created so far (the default stream first)."""
        return list(self._streams)

    def _stream(self, stream: Optional[CudaStream]) -> CudaStream:
        return stream if stream is not None else self.default_stream

    # ------------------------------------------------------------------
    # managed memory (UVM)
    # ------------------------------------------------------------------

    def malloc_managed(
        self,
        nbytes: int,
        name: Optional[str] = None,
        array: Optional[np.ndarray] = None,
    ) -> ManagedBuffer:
        """`cudaMallocManaged`: reserve unified VA; populate lazily."""
        if array is not None and array.nbytes != nbytes:
            raise ConfigurationError(
                f"backing array is {array.nbytes} bytes, buffer is {nbytes}"
            )
        if name is None:
            name = f"managed{self._buffer_counter}"
        self._buffer_counter += 1
        va = self.address_space.allocate(nbytes)
        buffer = ManagedBuffer(name, va, array=array)
        self.driver.register_blocks(buffer.blocks)
        self._managed.append(buffer)
        if self.tracer.enabled:
            self._program_op(
                "malloc",
                buffer=buffer.name,
                nbytes=nbytes,
                backed=array is not None,
            )
        return buffer

    def free(self, buffer: ManagedBuffer) -> None:
        """`cudaFree` on managed memory: residency dropped, data dead."""
        if buffer.freed:
            raise SimulationError(f"double free of {buffer.name!r}")
        if self.tracer.enabled:
            self._program_op("free", buffer=buffer.name)
        self.driver.release_blocks(buffer.blocks)
        self.address_space.free(buffer.va_range)
        buffer.freed = True

    # ------------------------------------------------------------------
    # host-side access to managed memory (CPU faults)
    # ------------------------------------------------------------------

    def _host_access(
        self, buffer: ManagedBuffer, mode: AccessMode, rng: Optional[VaRange]
    ) -> Generator:
        if self.tracer.enabled:
            offset, length = self._rng_fields(buffer, rng)
            self._program_op(
                "host_access",
                buffer=buffer.name,
                mode=mode.value,
                offset=offset,
                length=length,
            )
        blocks = buffer.blocks_in(rng)
        yield from self.driver.make_resident_cpu(
            blocks, TransferReason.FAULT_MIGRATION, charge_faults=True
        )
        for block in blocks:
            self.driver.note_access(block, mode)
        nbytes = rng.length if rng is not None else buffer.nbytes
        yield self.env.timeout(nbytes / self.host.memory_bandwidth)

    def host_write(
        self, buffer: ManagedBuffer, rng: Optional[VaRange] = None
    ) -> Generator:
        """Host code fully overwrites ``rng`` of the buffer (synchronous)."""
        yield from self._host_access(buffer, AccessMode.WRITE, rng)

    def host_read(
        self, buffer: ManagedBuffer, rng: Optional[VaRange] = None
    ) -> Generator:
        """Host code reads ``rng`` of the buffer (synchronous)."""
        yield from self._host_access(buffer, AccessMode.READ, rng)

    def host_update(
        self, buffer: ManagedBuffer, rng: Optional[VaRange] = None
    ) -> Generator:
        """Host read-modify-write of ``rng`` (synchronous)."""
        yield from self._host_access(buffer, AccessMode.READWRITE, rng)

    # ------------------------------------------------------------------
    # async UVM operations
    # ------------------------------------------------------------------

    def prefetch_async(
        self,
        buffer: ManagedBuffer,
        destination: Optional[str] = None,
        rng: Optional[VaRange] = None,
        stream: Optional[CudaStream] = None,
    ) -> Process:
        """`cudaMemPrefetchAsync` to ``destination`` (default: the GPU)."""
        dest = destination if destination is not None else self.gpu.name
        if dest != CPU and dest not in self.driver.gpu_names():
            raise ConfigurationError(f"unknown prefetch destination {dest!r}")
        blocks = buffer.blocks_in(rng)
        target = self._stream(stream)
        process = target.enqueue(
            lambda: self.driver.prefetch(blocks, dest),
            label=f"prefetch:{buffer.name}",
        )
        if self.tracer.enabled:
            offset, length = self._rng_fields(buffer, rng)
            self._program_op(
                "prefetch",
                handle=process,
                buffer=buffer.name,
                dest=dest,
                offset=offset,
                length=length,
                stream=target.name,
            )
        return process

    def discard_async(
        self,
        buffer: ManagedBuffer,
        rng: Optional[VaRange] = None,
        mode: str = "eager",
        stream: Optional[CudaStream] = None,
    ) -> Process:
        """`UvmDiscardAsync` / `UvmDiscardLazyAsync` (§4).

        Enqueued on the stream like any memory operation, so it executes
        strictly after previously enqueued kernels — the ordering §4.2
        requires.  The process's value is a
        :class:`~repro.core.discard.DiscardOutcome`.
        """
        try:
            manager = self.discard_managers[mode]
        except KeyError:
            raise ConfigurationError(
                f"unknown discard mode {mode!r}; expected one of "
                f"{sorted(self.discard_managers)}"
            ) from None
        target = rng if rng is not None else buffer.va_range
        blocks = list(buffer.blocks)
        queue = self._stream(stream)
        process = queue.enqueue(
            lambda: manager.discard_range(blocks, target),
            label=f"discard_{mode}:{buffer.name}",
        )
        if self.tracer.enabled:
            offset, length = self._rng_fields(buffer, rng)
            self._program_op(
                "discard",
                handle=process,
                buffer=buffer.name,
                mode=mode,
                offset=offset,
                length=length,
                stream=queue.name,
            )
        return process

    def launch(
        self,
        kernel: KernelSpec,
        stream: Optional[CudaStream] = None,
        device: Optional[str] = None,
    ) -> Process:
        """Launch a kernel asynchronously on ``stream`` (default GPU
        unless ``device`` names another registered GPU)."""
        try:
            executor = self.executors[device or self.gpu.name]
        except KeyError:
            raise ConfigurationError(f"unknown device {device!r}") from None
        queue = self._stream(stream)
        process = queue.enqueue(
            lambda: executor.run_kernel(kernel), label=kernel.name
        )
        if self.tracer.enabled:
            accesses = []
            for acc in kernel.accesses:
                offset, length = self._rng_fields(acc.buffer, acc.rng)
                accesses.append(
                    {
                        "buffer": acc.buffer.name,
                        "mode": acc.mode.value,
                        "offset": offset,
                        "length": length,
                        "pattern": _pattern_fields(acc.pattern),
                    }
                )
            self._program_op(
                "kernel",
                handle=process,
                kernel=kernel.name,
                duration=kernel.duration,
                flops=kernel.flops,
                waves=kernel.waves,
                functional=kernel.fn is not None,
                device=device or self.gpu.name,
                stream=queue.name,
                accesses=accesses,
            )
        return process

    def launch_raw(
        self,
        name: str,
        duration: float,
        stream: Optional[CudaStream] = None,
    ) -> Process:
        """Launch a pure-compute kernel with no UVM interaction.

        Used by the No-UVM baselines, whose kernels run entirely out of
        explicit device buffers and never fault.
        """

        def body() -> Generator:
            request = self.executor.sm_engine.request()
            yield request
            try:
                self.executor.kernels_launched += 1
                if duration > 0:
                    yield self.env.timeout(duration)
            finally:
                self.executor.sm_engine.release(request)

        queue = self._stream(stream)
        process = queue.enqueue(body, label=name)
        if self.tracer.enabled:
            self._program_op(
                "kernel_raw",
                handle=process,
                kernel=name,
                duration=duration,
                stream=queue.name,
            )
        return process

    # ------------------------------------------------------------------
    # explicit (No-UVM) memory management
    # ------------------------------------------------------------------

    def malloc_device(self, nbytes: int, name: Optional[str] = None) -> Generator:
        """`cudaMalloc`: synchronous, Table-2 cost; returns a DeviceBuffer."""
        if name is None:
            name = f"device{self._buffer_counter}"
        self._buffer_counter += 1
        self.driver.reserve_gpu_memory(self.gpu.name, nbytes)
        yield self.env.timeout(self.costs.malloc_device(nbytes))
        return DeviceBuffer(name, nbytes, self.gpu.name)

    def free_device(self, buffer: DeviceBuffer) -> Generator:
        """`cudaFree`: synchronous, Table-2 cost."""
        if buffer.freed:
            raise SimulationError(f"double free of {buffer.name!r}")
        buffer.freed = True
        self.driver.release_gpu_memory(self.gpu.name, buffer.nbytes)
        yield self.env.timeout(self.costs.free_device(buffer.nbytes))

    def memcpy_async(
        self,
        nbytes: int,
        direction: TransferDirection,
        stream: Optional[CudaStream] = None,
        reason: TransferReason = TransferReason.MEMCPY,
        device: Optional[str] = None,
    ) -> Process:
        """`cudaMemcpyAsync` of ``nbytes`` (explicit-management baselines).

        ``device`` selects whose copy engines carry the transfer (the
        default GPU otherwise).
        """
        engines = self.driver._gpu(device or self.gpu.name).engines
        queue = self._stream(stream)
        process = queue.enqueue(
            lambda: self.driver.migration.raw_transfer(
                nbytes, direction, reason, engines
            ),
            label=f"memcpy_{direction.value}",
        )
        if self.tracer.enabled:
            self._program_op(
                "memcpy",
                handle=process,
                direction=direction.value,
                nbytes=nbytes,
                reason=reason.value,
                device=device or self.gpu.name,
                stream=queue.name,
            )
        return process

    # ------------------------------------------------------------------
    # synchronization and top-level driving
    # ------------------------------------------------------------------

    def synchronize(self, stream: Optional[CudaStream] = None) -> Generator:
        """`cudaStreamSynchronize` / `cudaDeviceSynchronize` (no stream)."""
        if self.tracer.enabled:
            self._program_op(
                "sync", stream=None if stream is None else stream.name
            )
        if stream is not None:
            yield from stream.synchronize()
        else:
            yield from synchronize_all(self.env, self._streams)

    def run(self, program) -> float:
        """Run a host program generator to completion; returns elapsed time.

        The program receives this runtime as its single argument.  After
        it finishes, remaining asynchronous work is drained and the RMT
        classifier finalized.
        """
        process = self.env.process(program(self))
        self.env.run(until=process)
        self.env.run()
        self.driver.finalize()
        return self.env.now

    @property
    def elapsed(self) -> float:
        """Current simulated time in seconds."""
        return self.env.now

    def begin_measurement(self) -> None:
        """Mark the start of the measured region.

        The paper's timings exclude input preprocessing ("These
        measurements exclude the pre-processing of input data", §7.5);
        workloads call this after host-side data generation so
        :attr:`measured_seconds` reports GPU runtime only.
        """
        if self.tracer.enabled:
            self._program_op("measure")
        self.measure_start = self.env.now

    @property
    def measured_seconds(self) -> float:
        """Time since :meth:`begin_measurement` (whole run if never called)."""
        return self.env.now - self.measure_start

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Headline numbers for experiment reports."""
        traffic = self.driver.traffic
        return {
            "elapsed_seconds": self.env.now,
            "traffic_gb": traffic.total_gb,
            "traffic_h2d_gb": traffic.bytes_h2d / 1e9,
            "traffic_d2h_gb": traffic.bytes_d2h / 1e9,
            "redundant_gb": self.driver.rmt.redundant_bytes / 1e9,
            "useful_gb": self.driver.rmt.useful_bytes / 1e9,
        }
