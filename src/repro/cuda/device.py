"""Device models.

Parameterized CPU/GPU specifications with presets for the paper's testbed
hardware: the RTX 3080 Ti used in §7 (11.77 GB usable), the GTX 1070 of
Table 1, and an A100 for the §2.3 discussion.  All evaluation-relevant
behaviour flows from these numbers: memory capacity (oversubscription),
sustained kernel throughput (compute time), and zeroing bandwidth.

``scaled()`` shrinks a device for fast test/bench runs: capacity scales
down together with the workload, preserving every ratio the paper's
tables report (normalized runtime, traffic reduction, crossover points)
while cutting simulated block counts by the same factor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import GB, GIB


@dataclass(frozen=True)
class GpuSpec:
    """A discrete GPU's evaluation-relevant parameters.

    Attributes:
        name: processor identifier used throughout the simulator.
        memory_bytes: usable device memory (after driver carve-outs).
        effective_flops: sustained FLOP/s our kernel-time model divides
            kernel FLOP counts by.  This is deliberately *sustained*, not
            peak: it already folds in typical utilization.
        local_bandwidth: device DRAM bandwidth in bytes/s (§2.3 context).
        zero_bandwidth: copy-engine zeroing bandwidth (§5.4).
        model: marketing name, for reports.
    """

    name: str
    memory_bytes: int
    effective_flops: float
    local_bandwidth: float
    zero_bandwidth: float
    model: str

    def scaled(self, factor: float) -> "GpuSpec":
        """A capacity-scaled copy (workloads must scale by the same factor)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        return replace(self, memory_bytes=int(self.memory_bytes * factor))


@dataclass(frozen=True)
class HostSpec:
    """The host CPU + DRAM side of the platform."""

    memory_bytes: int
    #: Sustained host-side bandwidth for program reads/writes of managed
    #: memory (a single-socket DDR4-3200 system, one streaming core).
    memory_bandwidth: float
    model: str

    def scaled(self, factor: float) -> "HostSpec":
        if factor <= 0:
            raise ValueError(f"scale factor must be positive: {factor}")
        return HostSpec(
            int(self.memory_bytes * factor), self.memory_bandwidth, self.model
        )


def rtx_3080ti(name: str = "gpu0") -> GpuSpec:
    """The paper's §7 evaluation GPU: 'a total of 11.77GB physical memory'."""
    return GpuSpec(
        name=name,
        memory_bytes=int(11.77 * GIB),
        effective_flops=12e12,
        local_bandwidth=912 * GB,
        zero_bandwidth=500 * GB,
        model="NVIDIA GeForce RTX 3080 Ti",
    )


def gtx_1070(name: str = "gpu0") -> GpuSpec:
    """Table 1's GPU (8 GB, PCIe-3 era)."""
    return GpuSpec(
        name=name,
        memory_bytes=int(7.92 * GIB),
        effective_flops=3.2e12,
        local_bandwidth=256 * GB,
        zero_bandwidth=180 * GB,
        model="NVIDIA GeForce GTX 1070",
    )


def a100_40gb(name: str = "gpu0") -> GpuSpec:
    """The A100 referenced in §2.3 (>2 TB/s local bandwidth)."""
    return GpuSpec(
        name=name,
        memory_bytes=40 * GIB,
        effective_flops=60e12,
        local_bandwidth=2039 * GB,
        zero_bandwidth=900 * GB,
        model="NVIDIA A100 40GB",
    )


def ryzen_3900x() -> HostSpec:
    """The paper's host: 12-core Ryzen 3900X with 64 GB DDR4-3200."""
    return HostSpec(
        memory_bytes=64 * GIB,
        memory_bandwidth=20 * GB,
        model="AMD Ryzen 9 3900X, 64 GiB DDR4-3200",
    )
