"""Memory objects: managed (UVM) buffers and explicit device buffers.

:class:`ManagedBuffer` is what `cudaMallocManaged` returns — a span of the
unified address space decomposed into the driver's 2 MiB va_blocks, valid
from both host and device code (§2.1).  An optional NumPy array can back
the buffer for *functional* simulation, where kernels additionally compute
real results (used by the examples and semantics tests).

:class:`DeviceBuffer` is the explicit `cudaMalloc` allocation used by the
No-UVM baselines; it occupies reserved GPU frames outside UVM's reach and
is never migrated automatically.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.driver.va_block import VaBlock
from repro.errors import InvalidAddressError, SimulationError
from repro.units import BIG_PAGE
from repro.vm.layout import VaRange


class ManagedBuffer:
    """One `cudaMallocManaged` allocation."""

    def __init__(
        self,
        name: str,
        va_range: VaRange,
        array: Optional[np.ndarray] = None,
    ) -> None:
        self.name = name
        self.va_range = va_range
        self.array = array
        self.freed = False
        self.blocks: List[VaBlock] = []
        offset = va_range.start
        while offset < va_range.end:
            block_start = offset - (offset % BIG_PAGE)
            block_end = min(block_start + BIG_PAGE, va_range.end)
            used = block_end - max(offset, block_start)
            block = VaBlock(block_start // BIG_PAGE, used, buffer=self)
            self.blocks.append(block)
            offset = block_end

    @property
    def nbytes(self) -> int:
        return self.va_range.length

    def __len__(self) -> int:
        return self.nbytes

    def _check_live(self) -> None:
        if self.freed:
            raise SimulationError(f"use-after-free of managed buffer {self.name!r}")

    def subrange(self, offset: int = 0, length: Optional[int] = None) -> VaRange:
        """A VA range within this buffer (defaults to the whole buffer)."""
        self._check_live()
        if length is None:
            length = self.nbytes - offset
        return self.va_range.subrange(offset, length)

    def blocks_in(self, rng: Optional[VaRange] = None) -> List[VaBlock]:
        """The va_blocks overlapping ``rng`` (all blocks if ``None``)."""
        self._check_live()
        if rng is None:
            return list(self.blocks)
        if not self.va_range.contains_range(rng):
            raise InvalidAddressError(f"{rng!r} is outside buffer {self.name!r}")
        if rng.length == 0:
            return []
        # Blocks are stored in ascending contiguous index order, so the
        # overlap set is a slice computable from the range bounds alone.
        base = self.blocks[0].index
        first = rng.start // BIG_PAGE - base
        last = (rng.end - 1) // BIG_PAGE - base
        return self.blocks[max(first, 0) : last + 1]

    def resident_bytes_on(self, processor: str) -> int:
        """Bytes of this buffer currently resident on ``processor``."""
        self._check_live()
        return sum(b.used_bytes for b in self.blocks if b.residency == processor)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self.freed else f"{len(self.blocks)} blocks"
        return f"<ManagedBuffer {self.name!r} {self.nbytes} bytes, {state}>"


class DeviceBuffer:
    """One explicit `cudaMalloc` allocation (No-UVM baselines).

    Device buffers occupy GPU memory for their whole lifetime; there is no
    migration, no faulting and no discard — the program moves data with
    explicit `cudaMemcpy` calls, exactly as in the paper's Listing 1/4/5.
    """

    def __init__(
        self,
        name: str,
        nbytes: int,
        gpu: str,
        array: Optional[np.ndarray] = None,
    ) -> None:
        if nbytes <= 0:
            raise InvalidAddressError(f"buffer size must be positive: {nbytes}")
        self.name = name
        self.nbytes = nbytes
        self.gpu = gpu
        self.array = array
        self.freed = False

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self.freed else "live"
        return f"<DeviceBuffer {self.name!r} {self.nbytes} bytes on {self.gpu}, {state}>"
