"""Memory access modes shared by the driver, executor and kernel specs.

The RMT classifier's entire job reduces to knowing, for each touched
va_block, whether the program *reads* its prior contents or fully
*overwrites* them (§3.1: "when a buffer is transferred but then
overwritten before being read, that transfer was redundant").
"""

from __future__ import annotations

import enum


class AccessMode(enum.Enum):
    """How a kernel or host routine uses a buffer's existing contents."""

    #: Prior contents are consumed.
    READ = "read"
    #: Prior contents are fully overwritten without being read.
    WRITE = "write"
    #: Prior contents are both read and updated (read-modify-write).
    READWRITE = "readwrite"

    #: Whether prior contents are consumed / updated.  Plain member
    #: attributes (assigned below) rather than properties: the driver
    #: queries these once per touched block per wave.
    reads: bool
    writes: bool


AccessMode.READ.reads = True
AccessMode.READ.writes = False
AccessMode.WRITE.reads = False
AccessMode.WRITE.writes = True
AccessMode.READWRITE.reads = True
AccessMode.READWRITE.writes = True
