"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``TypeError``/``ValueError`` from
CPython itself) from simulated-system failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class SnapshotError(SimulationError):
    """A snapshot was requested in a state that cannot be captured.

    Snapshots are only legal at *quiescence* — an empty event heap with
    every process finished — because live generator frames cannot be
    deep-copied.  Raised by :mod:`repro.engine.snapshot` and by
    :meth:`~repro.engine.core.Process.__deepcopy__`.
    """


class OutOfMemoryError(ReproError):
    """A physical memory allocation could not be satisfied.

    Raised by the frame allocators when a processor's memory is exhausted
    and no eviction is possible (e.g. the No-UVM baseline exceeding GPU
    capacity, which the paper's Listing 4 notes "will not work").
    """


class InvalidAddressError(ReproError):
    """An operation referenced a virtual address outside any allocation."""


class MappingError(ReproError):
    """A page-table mapping operation was inconsistent.

    Examples: mapping a VA that is already mapped on another processor
    without first unmapping it, or unmapping a VA that holds no PTE.
    """


class StreamError(ReproError):
    """A CUDA-stream ordering or synchronization rule was violated."""


class DiscardSemanticsError(ReproError):
    """The program violated the discard directive's contract.

    The primary case is the ``UvmDiscardLazy`` misuse described in §5.2 of
    the paper: re-purposing a lazily-discarded region without the mandatory
    prefetch notification, which lets the driver reclaim pages that hold
    new values.
    """


class DataCorruptionError(ReproError):
    """The data oracle observed a read returning a value the §4.1 semantics
    do not permit (neither zeros, nor a previously written value, nor the
    latest write after the last discard)."""


class ConfigurationError(ReproError):
    """An experiment or device was configured with inconsistent parameters."""


class TransferError(SimulationError):
    """A DMA command failed more times than the driver's retry budget.

    Raised by the migration engine when injected transient transfer
    faults (see :meth:`repro.interconnect.link.Link.inject_transfer_fault`)
    outlast ``UvmDriverConfig.transfer_max_retries``.
    """


class InvariantViolationError(SimulationError):
    """The online validation layer observed an inconsistent driver state.

    Raised (in strict mode) or recorded (otherwise) by
    :class:`repro.chaos.OnlineValidator`; carries the first violated
    invariant's description.
    """
