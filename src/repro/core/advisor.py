"""Discard-insertion advisor (the paper's §8 extension hook).

The related-work section notes that "a compiler-assisted approach that
detects the buffer reuse distance can be extended to diagnose the
insertion of UvmDiscard API calls" [29].  This module implements that
diagnosis over an observed access trace: it watches the sequence of
kernel-level buffer accesses and reports, for each buffer use, whether the
buffer's *next* access overwrites it without reading — exactly the
condition under which a discard directly after the current use is safe
and eliminates any intervening transfer.

The trainer uses this in tests to validate that its hand-placed discards
match the provably-safe set; users can run it on their own programs to
find discard opportunities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.access import AccessMode


@dataclass(frozen=True)
class ReuseEvent:
    """One observed kernel-level access to a named buffer."""

    step: int
    kernel: str
    buffer: str
    mode: AccessMode


@dataclass(frozen=True)
class DiscardSuggestion:
    """A provably safe discard point.

    The buffer's contents after ``after_kernel`` (access number
    ``after_step``) are dead: the next access, if any, overwrites them
    without reading.  ``reuse_distance`` is the number of intervening
    accesses to *other* buffers, a proxy for how likely the region is to
    be uselessly evicted and re-migrated in between.
    """

    buffer: str
    after_kernel: str
    after_step: int
    reuse_distance: Optional[int]


class DiscardAdvisor:
    """Derives safe discard points from an access trace."""

    def __init__(self) -> None:
        self._trace: List[ReuseEvent] = []

    def observe(self, kernel: str, buffer: str, mode: AccessMode) -> None:
        """Record one buffer access, in program order."""
        self._trace.append(ReuseEvent(len(self._trace), kernel, buffer, mode))

    @property
    def trace(self) -> List[ReuseEvent]:
        return list(self._trace)

    def suggestions(self) -> List[DiscardSuggestion]:
        """All safe discard points in the observed trace.

        An access at step *i* to buffer *B* yields a suggestion iff the
        next access to *B* (at step *j* > *i*) has mode ``WRITE`` — a full
        overwrite that never reads the old contents — or there is no later
        access to *B* at all (dead at end of trace).
        """
        next_access: Dict[str, Optional[ReuseEvent]] = {}
        results: List[DiscardSuggestion] = []
        # Walk backwards so each event can see the following access.
        for event in reversed(self._trace):
            successor = next_access.get(event.buffer)
            dead_after = successor is None or (
                successor.mode is AccessMode.WRITE
            )
            if dead_after:
                distance = (
                    successor.step - event.step - 1 if successor is not None else None
                )
                results.append(
                    DiscardSuggestion(
                        buffer=event.buffer,
                        after_kernel=event.kernel,
                        after_step=event.step,
                        reuse_distance=distance,
                    )
                )
            next_access[event.buffer] = event
        results.reverse()
        return results

    def suggested_after(self, kernel: str) -> List[str]:
        """Buffer names that are safely discardable right after ``kernel``.

        When a kernel appears multiple times in the trace, a buffer is
        included only if it is discardable after *every* occurrence —
        the conservative rule a static insertion tool must follow.
        """
        by_kernel: Dict[str, List[DiscardSuggestion]] = {}
        for suggestion in self.suggestions():
            by_kernel.setdefault(suggestion.after_kernel, []).append(suggestion)
        occurrence_counts: Dict[str, int] = {}
        for event in self._trace:
            key = (event.kernel, event.buffer)
            occurrence_counts[key] = occurrence_counts.get(key, 0) + 1  # type: ignore[index]
        safe: List[str] = []
        for suggestion in by_kernel.get(kernel, []):
            total = occurrence_counts.get((kernel, suggestion.buffer), 0)  # type: ignore[call-overload]
            safe_count = sum(
                1
                for s in by_kernel.get(kernel, [])
                if s.buffer == suggestion.buffer
            )
            if safe_count == total and suggestion.buffer not in safe:
                safe.append(suggestion.buffer)
        return safe
