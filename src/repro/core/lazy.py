"""`UvmDiscardLazy`: the software-dirty-bit implementation (§5.2).

Instead of destroying mappings, the driver keeps a *software* dirty bit
per block and the discard simply clears it — orders of magnitude cheaper
than GPU PTE manipulation.  Because the hardware cannot set the bit back
on a write, the program **must** notify the driver before re-purposing a
discarded region, by issuing the (already best-practice) prefetch: the
prefetch sets the dirty bits, or allocates/zeroes/maps fresh memory if
the region was already reclaimed.

Re-purposing without the prefetch is a semantics violation: the driver
may reclaim pages that hold new values.  The simulator's eviction path
detects this (`lazy_misuses` counter / :class:`DiscardSemanticsError` in
strict mode) and the data oracle marks the block corrupted, which is what
real hardware would silently let happen.

`UvmDiscardLazy` thus "demonstrates the potential benefits of enhancing
the GPU hardware" — per-PTE dirty bits would give `UvmDiscard`'s ease of
use with this implementation's performance.
"""

from __future__ import annotations

from repro.core.discard import DiscardManager
from repro.driver.va_block import VaBlock


class UvmDiscardLazy(DiscardManager):
    """Lazy discard: clear software dirty bits, keep mappings intact."""

    name = "UvmDiscardLazy"

    def _discard_block(self, block: VaBlock) -> float:
        return self.driver.discard_block_lazy(block)
