"""Discard directive base machinery shared by both implementations.

Handles the parts §4/§5.4 define independently of eager-vs-lazy:

- resolving a virtual address range to the driver's 2 MiB va_blocks,
- the alignment policy — "the discard operation prefers full 2 MiB-aligned
  virtual regions and sometimes ignores partial ones" (§5.4), so partial
  blocks are skipped (and counted) rather than splitting 2 MiB mappings,
- skipping blocks that are already discarded (idempotence),
- per-call cost accounting, returned as a :class:`DiscardOutcome`.

Subclasses implement :meth:`_discard_block` (the per-block state
transition + cost) and :meth:`_batch_epilogue` (per-call costs such as the
eager variant's TLB invalidation round-trips).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generator, Iterable, List, Sequence, Tuple

from repro.driver.driver import UvmDriver
from repro.driver.va_block import VaBlock
from repro.vm.layout import VaRange


@dataclass(frozen=True)
class DiscardOutcome:
    """Result of one discard API call."""

    requested_blocks: int
    discarded_blocks: int
    ignored_partial_blocks: int
    already_discarded_blocks: int
    time_cost: float
    #: Blocks whose 2 MiB mapping was split by a partial discard (only
    #: with the §5.4 policy disabled).
    split_blocks: int = 0


class DiscardManager(abc.ABC):
    """Applies the discard directive to block sets through the driver."""

    #: Human-readable implementation name ("UvmDiscard"/"UvmDiscardLazy").
    name: str = "abstract"

    def __init__(self, driver: UvmDriver) -> None:
        self.driver = driver
        self.calls = 0
        self.total_cost = 0.0

    # -- range resolution (§5.4 policy) ---------------------------------

    def select_blocks(
        self, blocks: Sequence[VaBlock], rng: VaRange
    ) -> Tuple[List[VaBlock], int, List[VaBlock]]:
        """Blocks of ``blocks`` the directive applies to within ``rng``.

        Returns ``(targets, ignored_partial, split)``.  With the driver's
        ``require_full_blocks`` policy (the paper's default), a block is a
        target only if ``rng`` covers all of its used bytes; partially
        covered blocks are ignored to avoid splitting 2 MiB mappings.
        With the policy disabled, partially covered blocks are *split*
        instead: their live remainder is preserved but every future
        migration of the block moves in 4 KiB pieces (§5.4's cost
        argument).
        """
        targets: List[VaBlock] = []
        ignored = 0
        split: List[VaBlock] = []
        rng_start = rng.start
        rng_end = rng.end
        require_full = self.driver.config.require_full_blocks
        for block in blocks:
            block_start = block.va_start
            block_end = block.va_end
            if block_start >= rng_end or rng_start >= block_end:
                continue
            if rng_start <= block_start and block_end <= rng_end:
                targets.append(block)
            elif require_full:
                ignored += 1
            else:
                split.append(block)
        return targets, ignored, split

    # -- the directive ----------------------------------------------------

    def discard(self, blocks: Iterable[VaBlock]) -> Generator:
        """Simulation process applying the directive to ``blocks``.

        Returns a :class:`DiscardOutcome` (via the process return value).
        """
        blocks = list(blocks)
        # A concurrent eviction (oversubscription churn, or an injected
        # pressure spike / ECC retirement) may hold a target mid-flight —
        # popped from its queue with residency still set.  Take the
        # driver's per-block residency locks before mutating, exactly as
        # the real driver takes the va_block lock.  Already-discarded
        # blocks are read-only here and are not locked, keeping the
        # idempotent re-discard wait-free.
        targets = [b for b in blocks if not b.discarded]
        yield from self.driver.lock_blocks(targets)
        tracer = self.driver.tracer
        started = self.driver.env.now if tracer.enabled else 0.0
        try:
            cost = self.driver.config.discard_command_overhead
            discarded = 0
            for block in targets:
                if block.discarded:  # re-discarded while we waited
                    continue
                cost += self._discard_block(block)
                discarded += 1
            skipped = len(blocks) - discarded
            cost += self._batch_epilogue(blocks)
            self.calls += 1
            self.total_cost += cost
            if cost:
                yield self.driver.env.timeout(cost)
        finally:
            self.driver.unlock_blocks(targets)
        if tracer.enabled:
            tracer.span(
                "driver/discard",
                self.name,
                started,
                self.driver.env.now,
                category="discard",
                args={"requested": len(blocks), "discarded": discarded},
            )
        return DiscardOutcome(
            requested_blocks=len(blocks),
            discarded_blocks=discarded,
            ignored_partial_blocks=0,
            already_discarded_blocks=skipped,
            time_cost=cost,
        )

    def discard_range(self, blocks: Sequence[VaBlock], rng: VaRange) -> Generator:
        """Apply the directive to ``rng``, honouring the §5.4 policy."""
        targets, ignored, split = self.select_blocks(blocks, rng)
        split_cost = 0.0
        for block in split:
            if not block.split:
                block.split = True
                # Splitting rewrites the block's PTEs: one unmap plus the
                # small-page re-population on the owning processor.
                if block.on_gpu:
                    table = self.driver.gpu_page_table(block.residency)  # type: ignore[arg-type]
                    split_cost += table.costs.unmap_block
                    split_cost += table.costs.map_block
        if split_cost:
            yield self.driver.env.timeout(split_cost)
        outcome: DiscardOutcome = yield from self.discard(targets)
        return DiscardOutcome(
            requested_blocks=outcome.requested_blocks + ignored + len(split),
            discarded_blocks=outcome.discarded_blocks,
            ignored_partial_blocks=ignored,
            already_discarded_blocks=outcome.already_discarded_blocks,
            time_cost=outcome.time_cost + split_cost,
            split_blocks=len(split),
        )

    # -- subclass hooks -----------------------------------------------------

    @abc.abstractmethod
    def _discard_block(self, block: VaBlock) -> float:
        """Transition one live block to discarded; return the time cost."""

    def _batch_epilogue(self, blocks: Sequence[VaBlock]) -> float:
        """Per-call cost applied after the per-block work (default none)."""
        return 0.0
