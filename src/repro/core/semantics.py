"""Ground-truth oracle for the discard directive's data semantics.

§4.1 of the paper: after a discard, "a subsequent read by either a CPU or
a GPU can return either zeros or old data values. ... On the other hand, a
new value written after the discard operation ... is guaranteed to be seen
by a subsequent read, until a future discard operation is made."

The oracle tracks, independently of the driver, which blocks the program
has written since their last discard.  If the driver ever *loses* such a
write — the `UvmDiscardLazy` misuse of re-purposing a region without the
mandatory prefetch, followed by reclamation (§5.2) — the block becomes
*corrupted*: a later read would observe neither zeros-or-old-values nor
the guaranteed new value.  Tests run the oracle in strict mode, where a
corrupted read raises; experiments count events instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.driver.va_block import VaBlock
from repro.errors import DataCorruptionError


@dataclass(frozen=True)
class OracleEvent:
    """One semantics-relevant incident observed by the oracle."""

    time: float
    block_index: int
    kind: str  # "corruption" | "corrupted_read" | "read_after_discard"
    detail: str


class DataOracle:
    """Validates program reads against the §4.1 discard semantics.

    Args:
        strict: raise :class:`DataCorruptionError` the moment a read
            observes a corrupted block.  Non-strict mode records an event
            and lets the simulation continue (matching what real hardware
            would do: silently return wrong data).
    """

    __slots__ = ("strict", "events", "_corrupted", "_guaranteed")

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.events: List[OracleEvent] = []
        self._corrupted: Set[int] = set()
        #: Version of the newest guaranteed-visible write per block.
        self._guaranteed: Dict[int, int] = {}

    @property
    def corrupted_blocks(self) -> Set[int]:
        return set(self._corrupted)

    @property
    def corruption_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "corruption")

    @property
    def corrupted_read_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "corrupted_read")

    def record_write(self, time: float, block: VaBlock) -> None:
        """The program wrote new values to ``block`` (post-bump version)."""
        # A write produces fresh guaranteed-visible data; if the block was
        # previously corrupted, the new write heals it.
        self._guaranteed[block.index] = block.version
        self._corrupted.discard(block.index)

    def record_discard(self, time: float, block: VaBlock) -> None:
        """The program discarded ``block``: no value is guaranteed anymore."""
        self._guaranteed.pop(block.index, None)
        # Discard also waives any pending corruption: nothing is guaranteed,
        # so no future read can observe a violation from past lost writes.
        self._corrupted.discard(block.index)

    def record_data_loss(self, time: float, block: VaBlock, detail: str) -> None:
        """The driver dropped data the program was guaranteed to see.

        Called by the eviction path when it reclaims, as discarded, a block
        that the program has re-written without notifying the driver.
        """
        if block.index in self._guaranteed:
            self._corrupted.add(block.index)
            self.events.append(
                OracleEvent(time, block.index, "corruption", detail)
            )

    def validate_read(self, time: float, block: VaBlock) -> None:
        """Check a program read of ``block`` against the semantics.

        Reads of discarded-but-unwritten blocks are *legal* (they may see
        zeros or stale values); reads of corrupted blocks are violations.
        """
        if block.index in self._corrupted:
            event = OracleEvent(
                time,
                block.index,
                "corrupted_read",
                "read observed data lost by a lazy-discard reclamation",
            )
            self.events.append(event)
            if self.strict:
                raise DataCorruptionError(
                    f"block {block.index}: {event.detail} at t={time:.6f}s"
                )
        elif block.discarded and not block.written_since_discard:
            # Legal but worth surfacing: the program consumes unspecified
            # values.  Usually a sign the discard call was misplaced.
            self.events.append(
                OracleEvent(
                    time,
                    block.index,
                    "read_after_discard",
                    "read of a discarded block before any new write",
                )
            )
