"""`UvmDiscard`: the eager-unmapping implementation (§5.1).

NVIDIA GPUs of the paper's generation have no per-PTE access or dirty
bits, so the only way for the driver to learn that a discarded page was
re-written is to make the re-access *fault*: `UvmDiscard` therefore
eagerly destroys every virtual mapping of the discarded region.  That
buys ease of use — no further program cooperation needed — at the price
of:

- GPU PTE-clear commands plus a TLB-invalidation round-trip over the
  interconnect per call (charged here, batched per GPU), and
- unnecessary GPU page faults when the region is re-used by the same GPU
  (the §7.3 Radix-sort 3.9x pathology), best mitigated by prefetching
  after the discard (§4.2).
"""

from __future__ import annotations

from typing import Sequence, Set

from repro.core.discard import DiscardManager
from repro.driver.va_block import VaBlock


class UvmDiscard(DiscardManager):
    """Eager discard: destroy mappings so re-access faults."""

    name = "UvmDiscard"

    def _discard_block(self, block: VaBlock) -> float:
        return self.driver.discard_block_eager(block)

    def _batch_epilogue(self, blocks: Sequence[VaBlock]) -> float:
        """One TLB invalidation round-trip per GPU whose PTEs were cleared.

        §5.1: "UvmDiscard may need to send GPU PTE clearing and GPU TLB
        invalidation commands via CPU-GPU interconnects and wait for the
        GPU to acknowledge their completion."  The shootdown is batched:
        one invalidation covers all blocks unmapped on that GPU in this
        call.
        """
        cost = 0.0
        invalidated: Set[str] = set()
        for block in blocks:
            # After _discard_block ran, GPU-resident blocks sit in the
            # discarded queue with their residency still recorded.
            if block.on_gpu and block.residency not in invalidated:
                invalidated.add(block.residency)  # type: ignore[arg-type]
                cost += self.driver.gpu_page_table(block.residency).tlb_invalidate()  # type: ignore[arg-type]
        return cost
