"""The paper's primary contribution: the UVM discard directive.

§4 defines the directive's semantics; §5 gives two implementations that
this package provides as drop-in discard *managers* over the simulated
driver:

- :class:`~repro.core.eager.UvmDiscard` — eagerly destroys virtual
  mappings so that any re-access faults and re-notifies the driver.
  Easy to use, but pays GPU PTE-clear + TLB-invalidate round-trips and
  extra faults (§5.1).
- :class:`~repro.core.lazy.UvmDiscardLazy` — clears a software dirty bit
  and leaves mappings intact; the program must issue the (now mandatory)
  prefetch before re-purposing the region (§5.2).

Both share the 2 MiB alignment policy (§5.4), the discarded page queue
(§5.5), delayed reclamation (§5.6) and access-after-discard revival
(§5.7), all of which live in the driver; the managers implement the
directive-level behaviour and cost accounting.
"""

from repro.core.advisor import DiscardAdvisor, ReuseEvent
from repro.core.discard import DiscardManager, DiscardOutcome
from repro.core.eager import UvmDiscard
from repro.core.lazy import UvmDiscardLazy
from repro.core.semantics import DataOracle, OracleEvent

__all__ = [
    "DiscardManager",
    "DiscardOutcome",
    "UvmDiscard",
    "UvmDiscardLazy",
    "DataOracle",
    "OracleEvent",
    "DiscardAdvisor",
    "ReuseEvent",
]
