"""Redundant-memory-transfer classification.

§3 defines an RMT as an automatic transfer "not needed for correctness":
the canonical case is a buffer that is migrated but then overwritten (or
discarded, or simply never touched) before any of the moved data is read.

The classifier keeps, per va_block, the list of transfers whose moved data
has not yet been *justified* by a read.  The program's subsequent action on
the block resolves the whole pending chain:

- a **read** (or read-modify-write) justifies every pending transfer of the
  block — the data had to survive each hop to be readable now;
- a full **overwrite** or a **discard** proves the moved data was dead, so
  every pending transfer was redundant;
- at the end of the run, still-unresolved transfers moved data that was
  never used again — also redundant.

This reproduces the driver instrumentation behind Figure 3, where the
"actually required" traffic of ResNet-53 is less than half of what UVM
moves.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.instrument.traffic import TransferDirection, TransferReason


class TransferFate(enum.Enum):
    """Resolution of a tracked transfer."""

    PENDING = "pending"
    USEFUL = "useful"
    REDUNDANT = "redundant"


class RmtClassifier:
    """Resolves per-block transfers to useful or redundant.

    A pending chain is stored as a plain list of byte counts: the
    classification outcome depends only on the *bytes* of each hop, so
    tracking direction/reason per hop (the original design) bought
    nothing and cost one object allocation per block transfer on the
    fault-service hot path.
    """

    __slots__ = ("_pending", "useful_bytes", "redundant_bytes", "_finalized")

    def __init__(self) -> None:
        self._pending: Dict[int, List[int]] = {}
        self.useful_bytes = 0
        self.redundant_bytes = 0
        self._finalized = False

    def on_transfer(
        self,
        block_index: int,
        nbytes: int,
        direction: TransferDirection,
        reason: TransferReason,
    ) -> None:
        """Track one block's worth of a migration/eviction/prefetch."""
        pending = self._pending
        chain = pending.get(block_index)
        if chain is None:
            pending[block_index] = [nbytes]
        else:
            chain.append(nbytes)

    def on_read(self, block_index: int) -> None:
        """The program read the block's data: pending chain was necessary."""
        chain = self._pending.pop(block_index, None)
        if chain:
            self.useful_bytes += sum(chain)

    def on_overwrite(self, block_index: int) -> None:
        """The program fully overwrote the block before reading it."""
        chain = self._pending.pop(block_index, None)
        if chain:
            self.redundant_bytes += sum(chain)

    def on_discard(self, block_index: int) -> None:
        """The program discarded the block: its data was dead."""
        chain = self._pending.pop(block_index, None)
        if chain:
            self.redundant_bytes += sum(chain)

    def _resolve(self, block_index: int, fate: TransferFate) -> None:
        chain = self._pending.pop(block_index, None)
        if not chain:
            return
        total = sum(chain)
        if fate is TransferFate.USEFUL:
            self.useful_bytes += total
        else:
            self.redundant_bytes += total

    def finalize(self) -> None:
        """Resolve everything still pending as redundant (never used)."""
        if self._finalized:
            return
        for block_index in list(self._pending):
            self._resolve(block_index, TransferFate.REDUNDANT)
        self._finalized = True

    @property
    def pending_bytes(self) -> int:
        """Bytes of tracked transfers not yet resolved useful/redundant."""
        return sum(sum(chain) for chain in self._pending.values())

    @property
    def classified_bytes(self) -> int:
        return self.useful_bytes + self.redundant_bytes

    @property
    def redundant_fraction(self) -> float:
        """Fraction of classified traffic that was redundant (0 if none)."""
        total = self.classified_bytes
        if total == 0:
            return 0.0
        return self.redundant_bytes / total
