"""Redundant-memory-transfer classification.

§3 defines an RMT as an automatic transfer "not needed for correctness":
the canonical case is a buffer that is migrated but then overwritten (or
discarded, or simply never touched) before any of the moved data is read.

The classifier keeps, per va_block, the list of transfers whose moved data
has not yet been *justified* by a read.  The program's subsequent action on
the block resolves the whole pending chain:

- a **read** (or read-modify-write) justifies every pending transfer of the
  block — the data had to survive each hop to be readable now;
- a full **overwrite** or a **discard** proves the moved data was dead, so
  every pending transfer was redundant;
- at the end of the run, still-unresolved transfers moved data that was
  never used again — also redundant.

This reproduces the driver instrumentation behind Figure 3, where the
"actually required" traffic of ResNet-53 is less than half of what UVM
moves.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.instrument.traffic import (
    TransferDirection,
    TransferReason,
    TransferRecord,
)

#: Per-record waste causes (see :attr:`RmtClassifier.record_fates`).
FATE_USEFUL = "useful"
FATE_OVERWRITTEN = "overwritten"
FATE_DISCARDED = "discarded"
FATE_UNUSED = "unused"


class TransferFate(enum.Enum):
    """Resolution of a tracked transfer."""

    PENDING = "pending"
    USEFUL = "useful"
    REDUNDANT = "redundant"


class RmtClassifier:
    """Resolves per-block transfers to useful or redundant.

    A pending chain is stored as a plain list of byte counts: the
    classification outcome depends only on the *bytes* of each hop, so
    tracking direction/reason per hop (the original design) bought
    nothing and cost one object allocation per block transfer on the
    fault-service hot path.
    """

    __slots__ = (
        "_pending",
        "useful_bytes",
        "redundant_bytes",
        "_finalized",
        "_pending_records",
        "record_fates",
        "buffer_fates",
    )

    def __init__(self) -> None:
        self._pending: Dict[int, List[int]] = {}
        self.useful_bytes = 0
        self.redundant_bytes = 0
        self._finalized = False
        # Attribution mode (records retained): per-block chains of
        # (record, nbytes, owner) hops, resolved into per-record and
        # per-buffer fate tallies.  Record tallies are keyed by
        # id(record) — the recorder keeps every record alive, so ids are
        # stable for the run's lifetime.  Empty and untouched on the
        # benchmark hot path.
        self._pending_records: Dict[
            int, List[Tuple[TransferRecord, int, str]]
        ] = {}
        self.record_fates: Dict[int, Dict[str, int]] = {}
        self.buffer_fates: Dict[str, Dict[str, int]] = {}

    def on_transfer(
        self,
        block_index: int,
        nbytes: int,
        direction: TransferDirection,
        reason: TransferReason,
        record: Optional[TransferRecord] = None,
        block=None,
    ) -> None:
        """Track one block's worth of a migration/eviction/prefetch.

        ``record`` (the retained :class:`TransferRecord` this block hop
        belongs to, when the recorder keeps records) enables per-record
        fate attribution alongside the aggregate tallies; ``block`` (the
        va_block itself) supplies the owning buffer for per-buffer waste
        tables.  Both stay ``None`` on the benchmark hot path.
        """
        pending = self._pending
        chain = pending.get(block_index)
        if chain is None:
            pending[block_index] = [nbytes]
        else:
            chain.append(nbytes)
        if record is not None:
            owner = "(unknown)"
            if block is not None and block.buffer is not None:
                owner = block.buffer.name
            rchain = self._pending_records.get(block_index)
            if rchain is None:
                self._pending_records[block_index] = [(record, nbytes, owner)]
            else:
                rchain.append((record, nbytes, owner))

    def _credit(self, block_index: int, fate: str) -> None:
        rchain = self._pending_records.pop(block_index, None)
        if not rchain:
            return
        fates = self.record_fates
        buffers = self.buffer_fates
        for record, nbytes, owner in rchain:
            tally = fates.get(id(record))
            if tally is None:
                fates[id(record)] = {fate: nbytes}
            else:
                tally[fate] = tally.get(fate, 0) + nbytes
            btally = buffers.get(owner)
            if btally is None:
                buffers[owner] = {fate: nbytes}
            else:
                btally[fate] = btally.get(fate, 0) + nbytes

    def on_read(self, block_index: int) -> None:
        """The program read the block's data: pending chain was necessary."""
        chain = self._pending.pop(block_index, None)
        if chain:
            self.useful_bytes += sum(chain)
            self._credit(block_index, FATE_USEFUL)

    def on_overwrite(self, block_index: int) -> None:
        """The program fully overwrote the block before reading it."""
        chain = self._pending.pop(block_index, None)
        if chain:
            self.redundant_bytes += sum(chain)
            self._credit(block_index, FATE_OVERWRITTEN)

    def on_discard(self, block_index: int) -> None:
        """The program discarded the block: its data was dead."""
        chain = self._pending.pop(block_index, None)
        if chain:
            self.redundant_bytes += sum(chain)
            self._credit(block_index, FATE_DISCARDED)

    def _resolve(self, block_index: int, fate: TransferFate) -> None:
        chain = self._pending.pop(block_index, None)
        if not chain:
            return
        total = sum(chain)
        if fate is TransferFate.USEFUL:
            self.useful_bytes += total
            self._credit(block_index, FATE_USEFUL)
        else:
            self.redundant_bytes += total
            self._credit(block_index, FATE_UNUSED)

    def finalize(self) -> None:
        """Resolve everything still pending as redundant (never used)."""
        if self._finalized:
            return
        for block_index in list(self._pending):
            self._resolve(block_index, TransferFate.REDUNDANT)
        self._finalized = True

    def fates_for(self, record: TransferRecord) -> Dict[str, int]:
        """Resolved fate tally for one retained record (may be partial
        until :meth:`finalize`); bytes not yet resolved are pending."""
        return dict(self.record_fates.get(id(record), {}))

    @property
    def pending_bytes(self) -> int:
        """Bytes of tracked transfers not yet resolved useful/redundant."""
        return sum(sum(chain) for chain in self._pending.values())

    @property
    def pending_record_bytes(self) -> int:
        """Bytes of record-attributed hops not yet resolved."""
        return sum(
            nbytes
            for chain in self._pending_records.values()
            for _, nbytes, _ in chain
        )

    @property
    def classified_record_bytes(self) -> int:
        """Bytes of record-attributed hops resolved into fates."""
        return sum(
            sum(tally.values()) for tally in self.record_fates.values()
        )

    @property
    def classified_bytes(self) -> int:
        return self.useful_bytes + self.redundant_bytes

    @property
    def redundant_fraction(self) -> float:
        """Fraction of classified traffic that was redundant (0 if none)."""
        total = self.classified_bytes
        if total == 0:
            return 0.0
        return self.redundant_bytes / total
