"""Interconnect traffic accounting.

Every byte that crosses the CPU-GPU link is recorded here with its
direction and *reason* — fault-driven migration, explicit prefetch,
capacity eviction, or an explicit memcpy from the No-UVM baselines.  The
per-reason breakdown is what lets the benchmarks show not just that
discard reduces traffic (Tables 4/6/8) but *which* traffic it removes
(evictions of dead data and the re-migrations they cause).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.interconnect.link import TransferDirection
from repro.units import to_gb


class TransferReason(enum.Enum):
    """Why a transfer crossed the interconnect."""

    FAULT_MIGRATION = "fault"
    PREFETCH = "prefetch"
    EVICTION = "eviction"
    MEMCPY = "memcpy"
    SWAP = "swap"  # manual swapping by the LMS-style baseline
    REMOTE_ACCESS = "remote"  # cache-coherent loads/stores (§2.3)

    @property
    def short(self) -> str:
        return self.value


@dataclass(frozen=True)
class TransferRecord:
    """One DMA command's worth of traffic.

    ``segments`` attributes the record's bytes to the owning managed
    buffers at *record time* — ``((buffer_name, nbytes), ...)`` in block
    order, with consecutive same-buffer blocks merged — so attribution
    survives buffer frees and block splits that would confuse a post-hoc
    index walk.  ``phase`` names the workload phase the transfer served:
    ``"setup"`` before the first kernel, then the most recently launched
    kernel's name.  Both are only populated when records are retained.
    """

    time: float
    direction: TransferDirection
    nbytes: int
    reason: TransferReason
    first_block: Optional[int] = None
    num_blocks: int = 0
    segments: Tuple[Tuple[str, int], ...] = ()
    phase: str = "setup"


def _segments_for(blocks) -> Tuple[Tuple[str, int], ...]:
    """Per-buffer byte segments for a span of blocks, in block order."""
    segments: List[List] = []
    last_name: Optional[str] = None
    for block in blocks:
        owner = block.buffer
        name = owner.name if owner is not None else "(unknown)"
        if name == last_name:
            segments[-1][1] += block.used_bytes
        else:
            segments.append([name, block.used_bytes])
            last_name = name
    return tuple((name, nbytes) for name, nbytes in segments)


class TrafficRecorder:
    """Accumulates transfer records and per-direction/per-reason totals."""

    #: Class-level default so instances unpickled from snapshots taken
    #: before the attribution layer still read as phase "setup".
    phase: str = "setup"

    def __init__(self, keep_records: bool = False) -> None:
        self._keep_records = keep_records
        self.records: List[TransferRecord] = []
        self.phase = "setup"
        # Keyed by the enum *values* (plain strings): enum members hash
        # through a Python-level ``__hash__``, which showed up as one of
        # the hottest frames in the fault-service profile.  Strings hash
        # in C and cache the result.
        self._by_direction: Dict[str, int] = {d.value: 0 for d in TransferDirection}
        self._by_reason: Dict[str, int] = {r.value: 0 for r in TransferReason}
        self.transfer_count = 0
        #: Bytes moved by block-attributed transfers (``num_blocks > 0``),
        #: i.e. exactly the transfers the RMT classifier also tracks.
        #: The conservation invariant ties the two tallies together:
        #: ``block_bytes == rmt.classified_bytes + rmt.pending_bytes``.
        self.block_bytes = 0

    def record(
        self,
        time: float,
        direction: TransferDirection,
        nbytes: int,
        reason: TransferReason,
        first_block: Optional[int] = None,
        num_blocks: int = 0,
        blocks: Optional[Sequence] = None,
    ) -> Optional[TransferRecord]:
        """Account one transfer; returns the record only when retained.

        With ``keep_records=False`` (every benchmark run) no
        :class:`TransferRecord` is constructed at all — the dataclass
        ``__init__`` was pure overhead on the fault-service hot path.
        ``blocks`` (the va_blocks the transfer moved, in span order) is
        likewise only inspected when records are retained, where it is
        folded into per-buffer attribution segments.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        self._by_direction[direction._value_] += nbytes
        self._by_reason[reason._value_] += nbytes
        self.transfer_count += 1
        if num_blocks > 0:
            self.block_bytes += nbytes
        if self._keep_records:
            segments = _segments_for(blocks) if blocks is not None else ()
            rec = TransferRecord(
                time, direction, nbytes, reason, first_block, num_blocks,
                segments, self.phase,
            )
            self.records.append(rec)
            return rec
        return None

    @property
    def bytes_h2d(self) -> int:
        return self._by_direction[TransferDirection.HOST_TO_DEVICE.value]

    @property
    def bytes_d2h(self) -> int:
        return self._by_direction[TransferDirection.DEVICE_TO_HOST.value]

    @property
    def bytes_d2d(self) -> int:
        return self._by_direction[TransferDirection.DEVICE_TO_DEVICE.value]

    @property
    def total_bytes(self) -> int:
        return self.bytes_h2d + self.bytes_d2h + self.bytes_d2d

    @property
    def total_gb(self) -> float:
        """Total traffic in decimal GB — the unit of the paper's tables."""
        return to_gb(self.total_bytes)

    def bytes_for(self, reason: TransferReason) -> int:
        return self._by_reason[reason.value]

    def breakdown(self) -> Dict[str, float]:
        """Per-reason traffic in GB, for reports."""
        return {r: to_gb(n) for r, n in self._by_reason.items() if n}

    def reset(self) -> None:
        # Deliberately leaves ``phase`` alone: begin_measurement() resets
        # counters mid-run, and the phase tracks executor state, not the
        # measurement window.
        self.records.clear()
        for d in self._by_direction:
            self._by_direction[d] = 0
        for r in self._by_reason:
            self._by_reason[r] = 0
        self.transfer_count = 0
        self.block_bytes = 0
