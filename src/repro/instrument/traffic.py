"""Interconnect traffic accounting.

Every byte that crosses the CPU-GPU link is recorded here with its
direction and *reason* — fault-driven migration, explicit prefetch,
capacity eviction, or an explicit memcpy from the No-UVM baselines.  The
per-reason breakdown is what lets the benchmarks show not just that
discard reduces traffic (Tables 4/6/8) but *which* traffic it removes
(evictions of dead data and the re-migrations they cause).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.interconnect.link import TransferDirection
from repro.units import to_gb


class TransferReason(enum.Enum):
    """Why a transfer crossed the interconnect."""

    FAULT_MIGRATION = "fault"
    PREFETCH = "prefetch"
    EVICTION = "eviction"
    MEMCPY = "memcpy"
    SWAP = "swap"  # manual swapping by the LMS-style baseline
    REMOTE_ACCESS = "remote"  # cache-coherent loads/stores (§2.3)

    @property
    def short(self) -> str:
        return self.value


@dataclass(frozen=True)
class TransferRecord:
    """One DMA command's worth of traffic."""

    time: float
    direction: TransferDirection
    nbytes: int
    reason: TransferReason
    first_block: Optional[int] = None
    num_blocks: int = 0


class TrafficRecorder:
    """Accumulates transfer records and per-direction/per-reason totals."""

    def __init__(self, keep_records: bool = False) -> None:
        self._keep_records = keep_records
        self.records: List[TransferRecord] = []
        self._by_direction: Dict[TransferDirection, int] = {
            d: 0 for d in TransferDirection
        }
        self._by_reason: Dict[TransferReason, int] = {r: 0 for r in TransferReason}
        self.transfer_count = 0
        #: Bytes moved by block-attributed transfers (``num_blocks > 0``),
        #: i.e. exactly the transfers the RMT classifier also tracks.
        #: The conservation invariant ties the two tallies together:
        #: ``block_bytes == rmt.classified_bytes + rmt.pending_bytes``.
        self.block_bytes = 0

    def record(
        self,
        time: float,
        direction: TransferDirection,
        nbytes: int,
        reason: TransferReason,
        first_block: Optional[int] = None,
        num_blocks: int = 0,
    ) -> TransferRecord:
        """Account one transfer; returns the (possibly unretained) record."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        rec = TransferRecord(time, direction, nbytes, reason, first_block, num_blocks)
        self._by_direction[direction] += nbytes
        self._by_reason[reason] += nbytes
        self.transfer_count += 1
        if num_blocks > 0:
            self.block_bytes += nbytes
        if self._keep_records:
            self.records.append(rec)
        return rec

    @property
    def bytes_h2d(self) -> int:
        return self._by_direction[TransferDirection.HOST_TO_DEVICE]

    @property
    def bytes_d2h(self) -> int:
        return self._by_direction[TransferDirection.DEVICE_TO_HOST]

    @property
    def bytes_d2d(self) -> int:
        return self._by_direction[TransferDirection.DEVICE_TO_DEVICE]

    @property
    def total_bytes(self) -> int:
        return self.bytes_h2d + self.bytes_d2h + self.bytes_d2d

    @property
    def total_gb(self) -> float:
        """Total traffic in decimal GB — the unit of the paper's tables."""
        return to_gb(self.total_bytes)

    def bytes_for(self, reason: TransferReason) -> int:
        return self._by_reason[reason]

    def breakdown(self) -> Dict[str, float]:
        """Per-reason traffic in GB, for reports."""
        return {r.value: to_gb(n) for r, n in self._by_reason.items() if n}

    def reset(self) -> None:
        self.records.clear()
        for d in self._by_direction:
            self._by_direction[d] = 0
        for r in self._by_reason:
            self._by_reason[r] = 0
        self.transfer_count = 0
        self.block_bytes = 0
