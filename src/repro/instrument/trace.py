"""Span-based tracing of *simulated* time with Chrome-trace-event export.

The tracer records what the end-of-run aggregates cannot: *when* fault
batches, migrations, evictions, discards, prefetches and kernels happened
relative to each other.  Spans carry simulated timestamps (the engine
clock), one thread-track per device queue / link direction / CUDA stream,
and chaos injections appear as instant events — so a run opens directly
in Perfetto or ``chrome://tracing`` as a timeline.

Design constraints, in order:

1. **Free when disabled.**  Instrumented objects hold
   :data:`NULL_TRACER` (a no-op singleton with ``enabled = False``); hot
   paths do a single attribute load plus a truth test and skip all span
   bookkeeping.  The engine's inner run loops are not instrumented at
   all — sampling rides the existing monitor hook.
2. **Deterministic when enabled.**  Span ids are assigned in record
   order, timestamps are simulated seconds, and the JSON export sorts
   keys — so a cold run, a snapshot-forked run and a chaos-repeat run
   with the same seed produce byte-identical trace files and an equal
   :meth:`Tracer.digest`.
3. **No perturbation.**  Recording a span never schedules an event,
   touches driver state or draws randomness; a traced run's simulation
   output is byte-identical to an untraced run.

Install order matters for fork determinism: like the chaos injector, a
tracer must be installed *after* ``run_uvm_prefix`` / ``fork()`` so the
shared prefix stays tracer-free (see ``repro.harness.tracerun``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.instrument.metrics import EngineMonitorSampler, MetricsRegistry

__all__ = [
    "TraceConfig",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "merge_chrome_traces",
    "validate_chrome_trace",
]

_SECONDS_TO_US = 1e6


class TraceConfig:
    """Switches for the tracing/metrics subsystem.

    ``enabled=False`` makes :meth:`Tracer.install` a no-op, leaving
    :data:`NULL_TRACER` on every instrumented object — the disabled
    configuration costs nothing beyond the dormant attribute checks.
    """

    __slots__ = ("enabled", "metrics_cadence", "max_records")

    def __init__(
        self,
        enabled: bool = True,
        metrics_cadence: int = 256,
        max_records: Optional[int] = None,
    ) -> None:
        if metrics_cadence < 0:
            raise ValueError(f"metrics_cadence must be >= 0, got {metrics_cadence}")
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.enabled = bool(enabled)
        #: Engine events between metric samples; 0 disables the sampler.
        self.metrics_cadence = metrics_cadence
        #: Record-count ceiling; beyond it new spans are counted as
        #: dropped instead of stored (``None`` = unbounded).
        self.max_records = max_records


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    A singleton (:data:`NULL_TRACER`) shared by every instrumented object;
    ``__deepcopy__`` returns ``self`` so engine snapshots and forks keep
    pointing at the shared instance instead of cloning it.
    """

    __slots__ = ()

    enabled = False

    def span(self, *args: Any, **kwargs: Any) -> int:
        return -1

    def instant(self, *args: Any, **kwargs: Any) -> int:
        return -1

    def note_op(self, handle: Any, record_id: int) -> None:
        pass

    def op_for(self, handle: Any) -> int:
        return -1

    def observe(self, name: str, value: float) -> None:
        pass

    def install(self, runtime: Any) -> "NullTracer":
        return self

    def uninstall(self) -> None:
        pass

    def __copy__(self) -> "NullTracer":
        return self

    def __deepcopy__(self, memo: Dict[int, Any]) -> "NullTracer":
        return self

    def __reduce__(self):
        # Pickle parity with __deepcopy__: a blob-forked snapshot keeps
        # pointing at the shared singleton instead of growing clones.
        return (_restore_null_tracer, ())


def _restore_null_tracer() -> "NullTracer":
    """Pickle target restoring the :data:`NULL_TRACER` singleton."""
    return NULL_TRACER


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans/instants in simulated time and exports Chrome JSON."""

    __slots__ = (
        "config",
        "enabled",
        "events",
        "dropped",
        "metrics",
        "process_name",
        "_sampler",
        "_attached",
        "_runtime",
        "_op_records",
    )

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self.enabled = self.config.enabled
        #: Flat record list; a record's position is its stable span id.
        #: Span:    ("X", track, name, category, start, end, args)
        #: Instant: ("i", track, name, category, when, args)
        self.events: List[Tuple] = []
        self.dropped = 0
        self.metrics = MetricsRegistry()
        self.process_name = "repro-sim"
        self._sampler: Optional[EngineMonitorSampler] = None
        self._attached: List[Tuple[Any, Any]] = []
        self._runtime: Any = None
        #: Async-op handle (stream Process object) -> the id of the
        #: "program" record that enqueued it, so cross-stream waits can
        #: name the op they wait on.  Keyed by the live object (not
        #: ``id()``, which the allocator reuses); entries live as long
        #: as the tracer, which is bounded by one run.
        self._op_records: Dict[Any, int] = {}

    # -- recording -------------------------------------------------------

    def span(
        self,
        track: str,
        name: str,
        start: float,
        end: float,
        category: str = "driver",
        args: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Record a completed duration span; returns its stable id."""
        events = self.events
        cap = self.config.max_records
        if cap is not None and len(events) >= cap:
            self.dropped += 1
            return -1
        span_id = len(events)
        events.append(("X", track, name, category, start, end, args))
        return span_id

    def instant(
        self,
        track: str,
        name: str,
        when: float,
        category: str = "chaos",
        args: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Record a zero-duration marker; returns its stable id."""
        events = self.events
        cap = self.config.max_records
        if cap is not None and len(events) >= cap:
            self.dropped += 1
            return -1
        span_id = len(events)
        events.append(("i", track, name, category, when, args))
        return span_id

    def note_op(self, handle: Any, record_id: int) -> None:
        """Remember which "program" record enqueued the async op whose
        stream handle is ``handle`` (no-op for dropped records)."""
        if record_id >= 0:
            self._op_records[handle] = record_id

    def op_for(self, handle: Any) -> int:
        """The "program" record id that enqueued ``handle`` (-1 if
        unknown — e.g. the op predates this tracer's install)."""
        return self._op_records.get(handle, -1)

    def observe(self, name: str, value: float) -> None:
        """Feed a histogram sample into the attached metrics registry."""
        self.metrics.observe(name, value)

    # -- lifecycle -------------------------------------------------------

    def install(self, runtime: Any) -> "Tracer":
        """Attach to every instrumented object reachable from ``runtime``.

        Replaces each object's ``tracer`` attribute with ``self`` (saving
        the previous value for :meth:`uninstall`) and, when the config
        asks for it, installs the engine-monitor metrics sampler.  A
        disabled tracer attaches nothing.
        """
        if not self.enabled:
            return self
        if self._runtime is not None:
            raise RuntimeError("tracer is already installed")
        self._runtime = runtime
        driver = runtime.driver
        self._attach(driver)
        self._attach(driver.migration)
        for executor in runtime.executors.values():
            self._attach(executor)
        for stream in runtime.streams():
            self._attach(stream)
        # The runtime itself, so streams created after install inherit us.
        self._attach(runtime)
        cadence = self.config.metrics_cadence
        if cadence:
            self._sampler = EngineMonitorSampler(self.metrics, runtime, cadence)
            self._sampler.install()
        return self

    def _attach(self, obj: Any) -> None:
        self._attached.append((obj, obj.tracer))
        obj.tracer = self

    def uninstall(self) -> None:
        """Detach from all instrumented objects, restoring what was there."""
        if self._runtime is None:
            return
        if self._sampler is not None:
            self._sampler.uninstall()
            self._sampler = None
        for obj, previous in reversed(self._attached):
            obj.tracer = previous
        self._attached.clear()
        self._runtime = None

    # -- export ----------------------------------------------------------

    def digest(self) -> str:
        """SHA-256 over every record; equal digests => equal timelines."""
        payload = hashlib.sha256()
        for record in self.events:
            payload.update(repr(_canonical_record(record)).encode("utf-8"))
            payload.update(b"\x00")
        payload.update(b"dropped:%d" % self.dropped)
        return payload.hexdigest()

    def phase_seconds(self) -> Dict[str, float]:
        """Total simulated seconds per span category (instants excluded).

        Spans on different tracks overlap in time, so per-category totals
        can sum to more than the run's elapsed time; they answer "how much
        work of each kind", not "what fraction of the wall".
        """
        totals: Dict[str, float] = {}
        for record in self.events:
            if record[0] != "X":
                continue
            category = record[3]
            totals[category] = totals.get(category, 0.0) + (record[5] - record[4])
        return totals

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Build a Chrome-trace-event dict (Perfetto/chrome://tracing)."""
        tids: Dict[str, int] = {}
        body: List[Dict[str, Any]] = []
        for span_id, record in enumerate(self.events):
            kind, track, name, category = record[0], record[1], record[2], record[3]
            tid = tids.get(track)
            if tid is None:
                tid = tids[track] = len(tids) + 1
            if kind == "X":
                start, end, args = record[4], record[5], record[6]
                event = {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "name": name,
                    "cat": category,
                    "ts": start * _SECONDS_TO_US,
                    "dur": (end - start) * _SECONDS_TO_US,
                    "args": dict(args or {}, id=span_id),
                }
            else:
                when, args = record[4], record[5]
                event = {
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "name": name,
                    "cat": category,
                    "ts": when * _SECONDS_TO_US,
                    "args": dict(args or {}, id=span_id),
                }
            body.append(event)
        metadata: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "name": "process_name",
                "args": {"name": self.process_name},
            }
        ]
        for track, tid in sorted(tids.items(), key=lambda item: item[1]):
            metadata.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return {
            "traceEvents": metadata + body,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated",
                "dropped_records": self.dropped,
                "trace_digest": self.digest(),
            },
        }

    def to_json(self) -> str:
        """Serialize deterministically (sorted keys, compact separators)."""
        return json.dumps(
            self.to_chrome_trace(), sort_keys=True, separators=(",", ":")
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")


def _canonical_record(record: Tuple) -> Tuple:
    """A hashable, order-stable form of a record (args dict sorted)."""
    args = record[-1]
    canonical_args = tuple(sorted(args.items())) if args else ()
    return record[:-1] + (canonical_args,)


def merge_chrome_traces(named: List[Tuple[str, "Tracer"]]) -> Dict[str, Any]:
    """Merge tracers into one multi-process trace, one pid per label."""
    events: List[Dict[str, Any]] = []
    digests: Dict[str, str] = {}
    for pid, (label, tracer) in enumerate(named, start=1):
        trace = tracer.to_chrome_trace()
        digests[label] = trace["otherData"]["trace_digest"]
        for event in trace["traceEvents"]:
            event = dict(event, pid=pid)
            if event.get("ph") == "M" and event.get("name") == "process_name":
                event["args"] = {"name": label}
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "trace_digests": digests},
    }


_VALID_PHASES = {"X", "i", "M"}


def validate_chrome_trace(data: Any) -> List[str]:
    """Check ``data`` against the Chrome trace-event format.

    Returns a list of problems (empty = valid).  Covers the subset of the
    format this exporter emits: the JSON-object container form with
    ``X`` (complete), ``i`` (instant) and ``M`` (metadata) events.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["top level must be a JSON object with a traceEvents array"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be an array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown or missing ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name must be a string")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid must be an integer")
        if phase in ("X", "i"):
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: tid must be an integer")
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative number")
            if not isinstance(event.get("cat"), str):
                problems.append(f"{where}: cat must be a string")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant scope s must be t, p or g")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args must be an object")
    return problems
