"""Generic named event counters.

A thin dictionary wrapper used by the driver and executor to count faults,
evictions, zero-fills, discard revivals and similar discrete events without
each subsystem defining its own counter plumbing.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class Counters:
    """Monotonic named counters with dict-like read access."""

    __slots__ = ("_counts",)

    # Well-known counter names used across the driver, kept here so tests
    # and reports reference a single spelling.
    GPU_FAULT_BATCHES = "gpu_fault_batches"
    GPU_FAULTED_BLOCKS = "gpu_faulted_blocks"
    CPU_FAULTED_BLOCKS = "cpu_faulted_blocks"
    EVICTED_BLOCKS = "evicted_blocks"
    EVICTED_DISCARDED_BLOCKS = "evicted_discarded_blocks"
    EVICTED_UNUSED_FRAMES = "evicted_unused_frames"
    ZEROED_BLOCKS = "zeroed_blocks"
    DISCARDED_BLOCKS = "discarded_blocks"
    DISCARD_REVIVALS = "discard_revivals"
    PREFETCHED_BLOCKS = "prefetched_blocks"
    PREFETCH_RECENCY_ONLY = "prefetch_recency_only"
    AUTO_PREFETCHED_BLOCKS = "auto_prefetched_blocks"
    LAZY_MISUSES = "lazy_misuses"
    # Fault-injection (chaos) and recovery-path counters.
    TRANSFER_FAULTS = "transfer_faults"
    TRANSFER_RETRIES = "transfer_retries"
    ECC_RETIRED_FRAMES = "ecc_retired_frames"
    ECC_REMAPPED_BLOCKS = "ecc_remapped_blocks"
    KERNEL_ABORTS = "kernel_aborts"
    FAULT_REPLAY_STORMS = "fault_replay_storms"
    FAULT_BATCH_REORDERS = "fault_batch_reorders"
    LINK_DEGRADATIONS = "link_degradations"
    PRESSURE_SPIKES = "pressure_spikes"
    RECLAIMED_RESERVED_FRAMES = "reclaimed_reserved_frames"
    INVARIANT_CHECKS = "invariant_checks"

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters are monotonic; got bump({name}, {amount})")
        counts = self._counts
        counts[name] = counts.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()
