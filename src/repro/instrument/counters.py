"""Generic named event counters.

A thin dictionary wrapper used by the driver and executor to count faults,
evictions, zero-fills, discard revivals and similar discrete events without
each subsystem defining its own counter plumbing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Tuple


class Counters:
    """Monotonic named counters with dict-like read access."""

    __slots__ = ("_counts",)

    # Well-known counter names used across the driver, kept here so tests
    # and reports reference a single spelling.
    GPU_FAULT_BATCHES = "gpu_fault_batches"
    GPU_FAULTED_BLOCKS = "gpu_faulted_blocks"
    CPU_FAULTED_BLOCKS = "cpu_faulted_blocks"
    EVICTED_BLOCKS = "evicted_blocks"
    EVICTED_DISCARDED_BLOCKS = "evicted_discarded_blocks"
    EVICTED_UNUSED_FRAMES = "evicted_unused_frames"
    ZEROED_BLOCKS = "zeroed_blocks"
    DISCARDED_BLOCKS = "discarded_blocks"
    DISCARD_REVIVALS = "discard_revivals"
    PREFETCHED_BLOCKS = "prefetched_blocks"
    PREFETCH_RECENCY_ONLY = "prefetch_recency_only"
    AUTO_PREFETCHED_BLOCKS = "auto_prefetched_blocks"
    LAZY_MISUSES = "lazy_misuses"
    # Fault-injection (chaos) and recovery-path counters.
    TRANSFER_FAULTS = "transfer_faults"
    TRANSFER_RETRIES = "transfer_retries"
    ECC_RETIRED_FRAMES = "ecc_retired_frames"
    ECC_REMAPPED_BLOCKS = "ecc_remapped_blocks"
    KERNEL_ABORTS = "kernel_aborts"
    FAULT_REPLAY_STORMS = "fault_replay_storms"
    FAULT_BATCH_REORDERS = "fault_batch_reorders"
    LINK_DEGRADATIONS = "link_degradations"
    PRESSURE_SPIKES = "pressure_spikes"
    RECLAIMED_RESERVED_FRAMES = "reclaimed_reserved_frames"
    INVARIANT_CHECKS = "invariant_checks"

    #: One-line meaning per declared counter, rendered into the generated
    #: reference table in docs/OBSERVABILITY.md (kept in sync by test).
    DESCRIPTIONS: Dict[str, str] = {
        GPU_FAULT_BATCHES: "Replayable GPU fault batches serviced",
        GPU_FAULTED_BLOCKS: "Blocks brought to the GPU by fault servicing",
        CPU_FAULTED_BLOCKS: "Blocks brought to the host by CPU page faults",
        EVICTED_BLOCKS: "Used blocks swapped out to host memory (real D2H)",
        EVICTED_DISCARDED_BLOCKS: "Discarded blocks reclaimed with no transfer",
        EVICTED_UNUSED_FRAMES: "Frames reclaimed straight off the unused queue",
        ZEROED_BLOCKS: "Blocks satisfied by zero-fill instead of migration",
        DISCARDED_BLOCKS: "Blocks transitioned to discarded by the directive",
        DISCARD_REVIVALS: "Discarded blocks revived by a later access (S5.7)",
        PREFETCHED_BLOCKS: "Blocks moved by explicit cudaMemPrefetchAsync",
        PREFETCH_RECENCY_ONLY: "Prefetched blocks already resident (S7.5.1)",
        AUTO_PREFETCHED_BLOCKS: "Blocks moved by the stream-detection prefetcher",
        LAZY_MISUSES: "Lazy-discarded blocks re-purposed without notification",
        TRANSFER_FAULTS: "Injected transient DMA faults hit by commands",
        TRANSFER_RETRIES: "DMA commands retried after a transient fault",
        ECC_RETIRED_FRAMES: "Frames permanently retired by injected ECC errors",
        ECC_REMAPPED_BLOCKS: "Blocks displaced while vacating ECC-retired frames",
        KERNEL_ABORTS: "Kernel launches aborted and re-executed by chaos",
        FAULT_REPLAY_STORMS: "Fault batches hit by an injected replay storm",
        FAULT_BATCH_REORDERS: "Fault batches reordered by chaos before service",
        LINK_DEGRADATIONS: "Injected link bandwidth-degradation windows",
        PRESSURE_SPIKES: "Injected co-tenant memory-pressure spikes",
        RECLAIMED_RESERVED_FRAMES: "Reserved frames commandeered under OOM pressure",
        INVARIANT_CHECKS: "Online-validator invariant sweeps executed",
    }

    @classmethod
    def declared_names(cls) -> FrozenSet[str]:
        """Every counter name declared as an uppercase class constant.

        The runtime contract: :meth:`bump` is only ever called with one of
        these (enforced by test), so a typo cannot create a silent
        parallel counter.
        """
        return frozenset(
            value
            for key, value in vars(cls).items()
            if key.isupper() and key != "DESCRIPTIONS" and isinstance(value, str)
        )

    @classmethod
    def reference_table(cls) -> str:
        """Markdown reference table of declared counters (for the docs)."""
        lines: List[str] = [
            "| Counter | Meaning |",
            "| --- | --- |",
        ]
        for name in sorted(cls.declared_names()):
            lines.append(f"| `{name}` | {cls.DESCRIPTIONS[name]} |")
        return "\n".join(lines)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counters are monotonic; got bump({name}, {amount})")
        counts = self._counts
        counts[name] = counts.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()
