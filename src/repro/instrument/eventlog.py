"""Bounded simulation event log.

An optional, human-readable trace of driver decisions (faults, evictions,
discards, migrations) used by tests asserting ordering properties and by
anyone debugging a workload.  Bounded so that long benchmark runs cannot
accumulate unbounded memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional


@dataclass(frozen=True)
class LogEntry:
    time: float
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time * 1e6:12.2f}us] {self.category:<10} {self.message}"


class EventLog:
    """Fixed-capacity FIFO of :class:`LogEntry` records."""

    def __init__(self, capacity: int = 10_000, enabled: bool = False) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.enabled = enabled
        self._entries: Deque[LogEntry] = deque(maxlen=capacity)

    def log(self, time: float, category: str, message: str) -> None:
        """Append an entry if logging is enabled (cheap no-op otherwise)."""
        if not self.enabled:
            return
        self._entries.append(LogEntry(time, category, message))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def entries(self, category: Optional[str] = None) -> List[LogEntry]:
        """All retained entries, optionally filtered by category."""
        if category is None:
            return list(self._entries)
        return [e for e in self._entries if e.category == category]

    def clear(self) -> None:
        self._entries.clear()
