"""Bounded simulation event log.

An optional, human-readable trace of driver decisions (faults, evictions,
discards, migrations) used by tests asserting ordering properties and by
anyone debugging a workload.  Bounded so that long benchmark runs cannot
accumulate unbounded memory.

Logging is designed to be free when disabled and cheap when enabled:
:meth:`EventLog.log` accepts ``%``-style arguments and defers the actual
string interpolation until an entry's :attr:`~LogEntry.message` is first
read.  Call sites therefore do no formatting work at all — pass the
template and raw arguments, never a pre-built f-string.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator, List, Optional, Tuple


class LogEntry:
    """One log record with lazily-interpolated message text."""

    __slots__ = ("time", "category", "_message", "_args")

    def __init__(
        self, time: float, category: str, message: str, *args: Any
    ) -> None:
        self.time = time
        self.category = category
        self._message = message
        self._args: Tuple[Any, ...] = args

    @property
    def message(self) -> str:
        """The interpolated message (formatted on first access)."""
        if self._args:
            self._message = self._message % self._args
            self._args = ()
        return self._message

    def __str__(self) -> str:
        return f"[{self.time * 1e6:12.2f}us] {self.category:<10} {self.message}"

    def __repr__(self) -> str:
        return (
            f"LogEntry(time={self.time!r}, category={self.category!r}, "
            f"message={self.message!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogEntry):
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.message == other.message
        )

    def __hash__(self) -> int:
        return hash((self.time, self.category, self.message))


class EventLog:
    """Ring buffer of :class:`LogEntry` records with drop accounting.

    When the optional ``capacity`` is reached the oldest entry is
    evicted and :attr:`dropped` incremented, so a long sweep holds at
    most ``capacity`` entries yet still reports how much of the trace
    was truncated.  ``capacity=None`` retains everything (tests only).
    """

    def __init__(
        self, capacity: Optional[int] = 10_000, enabled: bool = False
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None: {capacity}")
        self.enabled = enabled
        #: Entries evicted by the ring buffer since the last :meth:`clear`.
        self.dropped = 0
        # The ring holds raw (time, category, template, args) tuples;
        # LogEntry objects are materialized lazily on read.  Appending a
        # tuple is ~2x cheaper than constructing a LogEntry, and most
        # entries are never read (or are dropped by the ring).
        self._entries: Deque[Tuple[float, str, str, Tuple[Any, ...]]] = deque(
            maxlen=capacity
        )
        self._maxlen = capacity

    @property
    def capacity(self) -> Optional[int]:
        """Maximum retained entries (``None`` = unbounded)."""
        return self._entries.maxlen

    def log(self, time: float, category: str, message: str, *args: Any) -> None:
        """Append an entry if logging is enabled (cheap no-op otherwise).

        ``message`` may be a ``%``-style template with ``args`` deferred:
        no interpolation (not even ``str()`` of the arguments) happens
        unless the entry's text is eventually read.
        """
        if not self.enabled:
            return
        entries = self._entries
        if len(entries) == self._maxlen:
            self.dropped += 1
        entries.append((time, category, message, args))

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return (LogEntry(t, c, m, *a) for t, c, m, a in self._entries)

    def entries(self, category: Optional[str] = None) -> List[LogEntry]:
        """All retained entries, optionally filtered by category."""
        if category is None:
            return [LogEntry(t, c, m, *a) for t, c, m, a in self._entries]
        return [
            LogEntry(t, c, m, *a)
            for t, c, m, a in self._entries
            if c == category
        ]

    def clear(self) -> None:
        self._entries.clear()
        self.dropped = 0
