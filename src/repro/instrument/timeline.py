"""Timeline recording and Chrome-trace export.

Records named spans (kernel executions, DMA transfers, discard calls) on
virtual-time tracks and exports them in the Chrome trace-event format, so
a simulated run can be inspected in ``chrome://tracing`` / Perfetto
exactly like an Nsight timeline: compute vs copy-engine overlap, fault
stalls, prefetch pipelining.

Enable by attaching a :class:`Timeline` to a runtime::

    runtime = CudaRuntime(...)
    timeline = Timeline.attach(runtime)
    runtime.run(program)
    timeline.write_chrome_trace("run.json")
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.runtime import CudaRuntime

#: Track (Chrome "tid") identifiers.
TRACK_COMPUTE = "compute"
TRACK_H2D = "copy-h2d"
TRACK_D2H = "copy-d2h"
TRACK_HOST = "host"


@dataclass(frozen=True)
class Span:
    """One closed interval on a named track."""

    track: str
    name: str
    start: float
    end: float
    category: str = "sim"
    args: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Collects spans; knows how to hook a runtime's executors/engines."""

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def record(
        self,
        track: str,
        name: str,
        start: float,
        end: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> Span:
        if end < start:
            raise ValueError(f"span ends before it starts: {name}")
        span = Span(track, name, start, end, category, args)
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # runtime attachment (monkey-patch style hooks, opt-in per runtime)
    # ------------------------------------------------------------------

    @classmethod
    def attach(cls, runtime: "CudaRuntime") -> "Timeline":
        """Instrument ``runtime`` so kernels and transfers record spans."""
        timeline = cls()
        env = runtime.env

        for gpu_name, executor in runtime.executors.items():
            original_run = executor.run_kernel

            def run_kernel(kernel, _orig=original_run, _gpu=gpu_name):
                start = env.now
                result = yield from _orig(kernel)
                timeline.record(
                    f"{_gpu}:{TRACK_COMPUTE}",
                    kernel.name,
                    start,
                    env.now,
                    category="kernel",
                )
                return result

            executor.run_kernel = run_kernel  # type: ignore[method-assign]

        migration = runtime.driver.migration
        original_transfer = migration.transfer_blocks

        def transfer_blocks(blocks, direction, reason, engines, _orig=original_transfer):
            start = env.now
            result = yield from _orig(blocks, direction, reason, engines)
            track = TRACK_H2D if direction.short == "h2d" else TRACK_D2H
            timeline.record(
                track,
                f"{reason.value} x{len(list(blocks))}",
                start,
                env.now,
                category="transfer",
                args={"direction": direction.short, "reason": reason.value},
            )
            return result

        migration.transfer_blocks = transfer_blocks  # type: ignore[method-assign]
        return timeline

    # ------------------------------------------------------------------
    # analysis and export
    # ------------------------------------------------------------------

    def busy_seconds(self, track: str) -> float:
        """Total occupied time on ``track`` (spans never overlap within a
        serialized track)."""
        return sum(s.duration for s in self.spans if s.track == track)

    def overlap_seconds(self, track_a: str, track_b: str) -> float:
        """Wall-clock during which both tracks were simultaneously busy —
        the overlap that prefetching buys."""
        spans_a = sorted(
            (s.start, s.end) for s in self.spans if s.track == track_a
        )
        spans_b = sorted(
            (s.start, s.end) for s in self.spans if s.track == track_b
        )
        total = 0.0
        i = j = 0
        while i < len(spans_a) and j < len(spans_b):
            start = max(spans_a[i][0], spans_b[j][0])
            end = min(spans_a[i][1], spans_b[j][1])
            if end > start:
                total += end - start
            if spans_a[i][1] <= spans_b[j][1]:
                i += 1
            else:
                j += 1
        return total

    def to_chrome_trace(self) -> List[Dict[str, Any]]:
        """The trace-event list (microsecond timestamps, 'X' events)."""
        events: List[Dict[str, Any]] = []
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": 0,
                    "tid": span.track,
                    "args": span.args or {},
                }
            )
        return events

    def write_chrome_trace(self, path: str) -> None:
        """Write a chrome://tracing-loadable JSON file."""
        with open(path, "w") as handle:
            json.dump({"traceEvents": self.to_chrome_trace()}, handle)
