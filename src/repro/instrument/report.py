"""Experiment report rendering: markdown and CSV.

Turns collections of :class:`~repro.harness.results.ExperimentResult`
rows into shareable artifacts — the machinery behind EXPERIMENTS.md and
the CLI's ``reproduce`` command.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Optional, Sequence

from repro.harness.results import ExperimentResult

#: Columns emitted for every result row, in order.
FIELDS = (
    "system",
    "config",
    "elapsed_seconds",
    "traffic_gb",
    "traffic_h2d_gb",
    "traffic_d2h_gb",
    "redundant_gb",
    "useful_gb",
    "metric",
)


def results_to_csv(results: Iterable[ExperimentResult]) -> str:
    """Serialize result rows as CSV text (header + one line per row)."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(FIELDS)
    for result in results:
        writer.writerow(
            [getattr(result, field) for field in FIELDS]
        )
    return out.getvalue()


def _fmt(value, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def results_to_markdown(
    results: Sequence[ExperimentResult],
    title: Optional[str] = None,
    fields: Sequence[str] = ("elapsed_seconds", "traffic_gb", "redundant_gb", "metric"),
) -> str:
    """Render result rows as a GitHub-flavoured markdown table."""
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    header = ["system", "config", *fields]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for result in results:
        cells = [result.system, result.config]
        cells.extend(_fmt(getattr(result, field)) for field in fields)
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def sweep_summary_table(
    rows: Sequence[tuple],
    fields: Sequence[str] = ("elapsed_seconds", "traffic_gb", "redundant_gb", "metric"),
) -> str:
    """Render sweep results as one aligned text table.

    ``rows`` are ``(label, result_or_None)`` pairs — the shape of
    :meth:`repro.harness.sweep.SweepReport.rows` after replacing each
    point with its ``label``.  A ``None`` result renders as ``OOM``
    (the configuration did not fit).
    """
    label_width = max([len("point"), *(len(str(label)) for label, _ in rows)]) + 2
    col = 16
    lines = [
        f"{'point':<{label_width}}"
        + f"{'status':>8}"
        + "".join(f"{f:>{col}}" for f in fields)
    ]
    for label, result in rows:
        if result is None:
            cells = f"{'OOM':>8}" + "".join(f"{'-':>{col}}" for _ in fields)
        else:
            cells = f"{'ok':>8}" + "".join(
                f"{_fmt(getattr(result, f), 4):>{col}}" for f in fields
            )
        lines.append(f"{str(label):<{label_width}}" + cells)
    return "\n".join(lines)


def phase_breakdown_table(
    phase_seconds: "dict[str, float]",
    elapsed_seconds: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Render a tracer's per-category time totals as an aligned table.

    ``phase_seconds`` is :meth:`repro.instrument.trace.Tracer.phase_seconds`
    output.  When ``elapsed_seconds`` is given, each phase also shows its
    share of the run — note that spans on different tracks overlap (a
    migration proceeds while a kernel computes), so shares can sum past
    100%: they answer "how busy was each subsystem", not "how was the
    wall divided".
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{'phase':<14}{'seconds':>12}" + ("" if elapsed_seconds is None else f"{'share':>9}"))
    for category in sorted(phase_seconds, key=phase_seconds.get, reverse=True):
        seconds = phase_seconds[category]
        row = f"{category:<14}{seconds:>12.6f}"
        if elapsed_seconds is not None:
            share = seconds / elapsed_seconds if elapsed_seconds else 0.0
            row += f"{share:>8.1%}"
        lines.append(row)
    return "\n".join(lines)


def speedup_summary(
    results: Sequence[ExperimentResult], baseline_system: str
) -> str:
    """One line per (system, config): speedup and traffic cut vs baseline."""
    by_config = {}
    for result in results:
        by_config.setdefault(result.config, {})[result.system] = result
    lines: List[str] = []
    for config, systems in by_config.items():
        base = systems.get(baseline_system)
        if base is None:
            continue
        for name, result in systems.items():
            if name == baseline_system:
                continue
            speedup = (
                base.elapsed_seconds / result.elapsed_seconds
                if result.elapsed_seconds
                else float("inf")
            )
            delta = (
                result.traffic_gb / base.traffic_gb - 1
                if base.traffic_gb
                else 0.0
            )
            lines.append(
                f"{config} {name}: {speedup:.2f}x speedup, "
                f"{delta:+.0%} traffic vs {baseline_system}"
            )
    return "\n".join(lines)
