"""Steady-state detection and iteration fast-forward.

DL training loops are strictly periodic in the simulator: after a
warm-up batch reaches the steady working set, every subsequent batch
issues the same faults, transfers, discards and kernels, so its *delta*
— elapsed time, counter increments, per-direction/per-reason traffic
bytes, RMT useful/redundant bytes — is identical batch after batch.
:class:`SteadyStateDetector` verifies that claim instead of assuming it:
a workload calls :meth:`mark` at each fully drained iteration boundary,
and only after ``verify_iterations`` consecutive deltas match exactly
(integers bit-for-bit, simulated time within a relative tolerance for
float-addition reordering) does :meth:`fast_forward` become legal.  The
replay then advances the clock and bumps every instrument by ``n``
deltas, skipping the event-by-event simulation of the remaining
iterations.

Fast-forward is a controlled approximation, not a bit-exact shortcut:
all integer observables (traffic bytes, counters, RMT bytes) replay
exactly, while simulated time can differ in the last few ulps because
``start + n*dt`` is not the same float sum as ``n`` individual
additions.  It is therefore gated behind
``UvmDriverConfig.steady_state_fastforward`` (off by default), rejected
in golden-trace modes by config validation, and validated against full
simulations in ``tests/test_steady_state.py``.

The RMT classifier deserves a note: its pending (not-yet-resolved)
transfer chains are *not* replayed, but in steady state the pending set
at the fast-forward point is congruent to the pending set a full run
holds at its end, so the final ``finalize()`` resolves the same number
of bytes either way — the validation tests pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError


#: Relative tolerance for comparing per-iteration time deltas.  Floating
#: point addition is not associative, so two physically identical batches
#: can differ by a few ulps once timestamps sit on a large running clock.
TIME_REL_TOL = 1e-9


@dataclass(frozen=True)
class _IterationDelta:
    """All observable increments of one iteration."""

    seconds: float
    counters: Dict[str, int]
    by_direction: Dict[object, int]
    by_reason: Dict[object, int]
    transfer_count: int
    rmt_useful: int
    rmt_redundant: int

    def matches(self, other: "_IterationDelta") -> bool:
        """Exact integer equality; time within :data:`TIME_REL_TOL`."""
        if (
            self.counters != other.counters
            or self.by_direction != other.by_direction
            or self.by_reason != other.by_reason
            or self.transfer_count != other.transfer_count
            or self.rmt_useful != other.rmt_useful
            or self.rmt_redundant != other.rmt_redundant
        ):
            return False
        scale = max(abs(self.seconds), abs(other.seconds), 1e-30)
        return abs(self.seconds - other.seconds) <= TIME_REL_TOL * scale


class SteadyStateDetector:
    """Verifies loop periodicity and replays verified iteration deltas.

    One detector per runtime per loop.  Call :meth:`mark` at every
    iteration boundary where the simulation is fully drained (all
    streams synchronized); it returns ``True`` once the last
    ``verify_iterations`` iteration deltas were identical, after which
    :meth:`fast_forward` may replay the verified delta.
    """

    def __init__(self, runtime, verify_iterations: int = 2) -> None:
        if verify_iterations < 1:
            raise ValueError(
                f"verify_iterations must be >= 1, got {verify_iterations}"
            )
        self._runtime = runtime
        self._verify = verify_iterations
        self._last_capture = self._capture()
        self._last_delta: Optional[_IterationDelta] = None
        self._streak = 0

    # -- capture/delta machinery ---------------------------------------

    def _capture(self) -> _IterationDelta:
        """Absolute instrument totals, in delta form for subtraction."""
        rt = self._runtime
        traffic = rt.driver.traffic
        rmt = rt.driver.rmt
        return _IterationDelta(
            seconds=rt.env.now,
            counters=rt.driver.counters.as_dict(),
            by_direction=dict(traffic._by_direction),
            by_reason=dict(traffic._by_reason),
            transfer_count=traffic.transfer_count,
            rmt_useful=rmt.useful_bytes,
            rmt_redundant=rmt.redundant_bytes,
        )

    @staticmethod
    def _subtract(now: _IterationDelta, then: _IterationDelta) -> _IterationDelta:
        keys = set(now.counters) | set(then.counters)
        return _IterationDelta(
            seconds=now.seconds - then.seconds,
            counters={
                k: now.counters.get(k, 0) - then.counters.get(k, 0) for k in keys
            },
            by_direction={
                k: now.by_direction[k] - then.by_direction.get(k, 0)
                for k in now.by_direction
            },
            by_reason={
                k: now.by_reason[k] - then.by_reason.get(k, 0)
                for k in now.by_reason
            },
            transfer_count=now.transfer_count - then.transfer_count,
            rmt_useful=now.rmt_useful - then.rmt_useful,
            rmt_redundant=now.rmt_redundant - then.rmt_redundant,
        )

    # -- public API -----------------------------------------------------

    @property
    def verified(self) -> bool:
        """Whether enough consecutive identical deltas were observed."""
        return self._streak >= self._verify

    def mark(self) -> bool:
        """Record an iteration boundary; ``True`` once steady state is
        verified (and :meth:`fast_forward` is legal)."""
        capture = self._capture()
        delta = self._subtract(capture, self._last_capture)
        self._last_capture = capture
        if self._last_delta is not None and delta.matches(self._last_delta):
            self._streak += 1
        else:
            self._streak = 0
        self._last_delta = delta
        return self.verified

    def fast_forward(self, iterations: int) -> None:
        """Replay the verified delta ``iterations`` times: advance the
        clock and bump every instrument without simulating events."""
        if iterations < 0:
            raise ValueError(f"iterations must be >= 0, got {iterations}")
        if not self.verified or self._last_delta is None:
            raise SimulationError(
                "fast_forward before steady state was verified; need "
                f"{self._verify} consecutive identical iteration deltas"
            )
        if iterations == 0:
            return
        delta = self._last_delta
        rt = self._runtime
        rt.env.advance(delta.seconds * iterations)
        counters = rt.driver.counters
        for name, amount in delta.counters.items():
            if amount:
                counters.bump(name, amount * iterations)
        traffic = rt.driver.traffic
        for direction, nbytes in delta.by_direction.items():
            traffic._by_direction[direction] += nbytes * iterations
        for reason, nbytes in delta.by_reason.items():
            traffic._by_reason[reason] += nbytes * iterations
        traffic.transfer_count += delta.transfer_count * iterations
        rmt = rt.driver.rmt
        rmt.useful_bytes += delta.rmt_useful * iterations
        rmt.redundant_bytes += delta.rmt_redundant * iterations
        # Re-baseline so a subsequent mark() compares against the
        # replayed totals rather than the pre-replay capture.
        self._last_capture = self._capture()
