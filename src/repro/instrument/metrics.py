"""Time-series metrics for the simulator: counters, gauges, histograms.

The registry complements :class:`repro.instrument.counters.Counters` (the
driver's end-of-run aggregate counters) with *timeline-aware* series:

- :class:`CounterMetric` — monotonic counters, reusing ``Counters`` names
  so a trace and a report always agree on spelling;
- :class:`Gauge` — sampled ``(simulated_time, value)`` series, written by
  the engine-monitor sampler (queue depths, residency, bandwidth
  utilization);
- :class:`Histogram` — bounded-bucket distributions (fault-service
  latency, batch sizes, transfer span bytes).

Everything here is deterministic: samples are keyed by simulated time and
engine event count, never wall-clock, so two runs of the same experiment
produce byte-identical CSV dumps.

:class:`EngineMonitorSampler` piggybacks on the engine's monitor hook
(the same mechanism the chaos injector and online validator use), firing
every ``cadence`` engine events.  It reads driver/runtime state through
plain attribute access so this module imports nothing from the driver
packages and cannot create an import cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "CounterMetric",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EngineMonitorSampler",
    "DEFAULT_BOUNDS",
]


#: Default histogram bucket upper bounds by metric name.  Latencies are in
#: simulated seconds, sizes in blocks or bytes.  Unknown names fall back
#: to :data:`_FALLBACK_BOUNDS`.
DEFAULT_BOUNDS: Dict[str, Tuple[float, ...]] = {
    "fault_batch_seconds": (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1),
    "fault_batch_blocks": (1, 2, 4, 8, 16, 32, 64, 128),
    "eviction_seconds": (1e-6, 1e-5, 1e-4, 1e-3, 1e-2),
    "kernel_seconds": (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0),
    "transfer_span_bytes": (
        64 * 1024,
        1 * 1024 * 1024,
        2 * 1024 * 1024,
        8 * 1024 * 1024,
        32 * 1024 * 1024,
    ),
    "prefetch_blocks": (1, 2, 4, 8, 16, 32, 64),
    # Wall-clock request latencies of the experiment server (seconds).
    "serve/request_seconds": (
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
        0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    ),
}

_FALLBACK_BOUNDS: Tuple[float, ...] = (1e-6, 1e-4, 1e-2, 1.0, 100.0)


class CounterMetric:
    """A monotonic counter (no timeline; mirrors ``Counters`` semantics)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"metric counters are monotonic; got inc({amount})")
        self.value += amount


class Gauge:
    """A sampled time series of ``(simulated_time, value)`` points."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def set(self, when: float, value: float) -> None:
        self.samples.append((when, value))

    @property
    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None


class Histogram:
    """A fixed-bucket histogram with count/total/min/max summary."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r}: bounds must be ascending")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
        }

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``0 <= q <= 1``).

        Walks the cumulative bucket counts to the bucket containing the
        ``q``-th observation and interpolates linearly inside it,
        clamped to the observed ``min``/``max`` so estimates never
        leave the recorded range.  Empty histograms return 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile wants 0 <= q <= 1, got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            lower = self.bounds[index - 1] if index > 0 else self.min
            upper = (
                self.bounds[index] if index < len(self.bounds) else self.max
            )
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                value = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return max(self.min, min(self.max, value))
            cumulative += bucket_count
        return self.max  # pragma: no cover - target beyond final bucket


class MetricsRegistry:
    """Lazily-created named counters, gauges and histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, CounterMetric] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> CounterMetric:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = CounterMetric(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            if bounds is None:
                bounds = DEFAULT_BOUNDS.get(name, _FALLBACK_BOUNDS)
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def sync_counters(self, when: float, counters) -> None:
        """Record one gauge sample per driver counter (``counter/<name>``)."""
        for name, value in counters.items():
            self.gauge("counter/" + name).set(when, value)

    # -- export ----------------------------------------------------------

    def to_csv(self) -> str:
        """Dump every gauge series as ``series,time,value`` rows.

        Series are ordered by name, samples in recording order, so the
        dump is byte-identical across identical runs.
        """
        lines = ["series,time,value"]
        for name in sorted(self.gauges):
            for when, value in self.gauges[name].samples:
                lines.append(f"{name},{when!r},{value!r}")
        return "\n".join(lines) + "\n"

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Histogram summaries plus counter values, for reports and tests."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.histograms):
            out[name] = self.histograms[name].summary()
        for name in sorted(self.counters):
            out[name] = {"count": float(self.counters[name].value)}
        return out


class EngineMonitorSampler:
    """Sample engine/driver occupancy into a registry at a fixed cadence.

    Installed through :meth:`Environment.add_monitor`; fires every
    ``cadence`` engine events (the deterministic injection clock), so the
    sample schedule is identical across cold, forked and repeat runs.
    """

    __slots__ = ("registry", "runtime", "cadence", "_installed", "_last")

    def __init__(self, registry: MetricsRegistry, runtime, cadence: int) -> None:
        if cadence < 1:
            raise ValueError(f"sampler cadence must be >= 1, got {cadence}")
        self.registry = registry
        self.runtime = runtime
        self.cadence = cadence
        self._installed = False
        traffic = runtime.driver.traffic
        self._last = (
            runtime.env.now,
            traffic.bytes_h2d,
            traffic.bytes_d2h,
            traffic.bytes_d2d,
        )

    def install(self) -> None:
        if self._installed:
            return
        self.runtime.env.add_monitor(self._on_event)
        self._installed = True
        self.sample()

    def uninstall(self) -> None:
        if not self._installed:
            return
        self.sample()
        self.runtime.env.remove_monitor(self._on_event)
        self._installed = False

    def _on_event(self, env, count: int) -> None:
        if count % self.cadence == 0:
            self.sample()

    def sample(self) -> None:
        runtime = self.runtime
        env = runtime.env
        registry = self.registry
        driver = runtime.driver
        now = env.now

        # Bandwidth utilization over the window since the last sample, as
        # a fraction of the link's peak (degradation counts as lost
        # utilization, matching how a hardware counter would read).
        last_now, last_h2d, last_d2h, last_d2d = self._last
        window = now - last_now
        if window > 0.0:
            traffic = driver.traffic
            peak = runtime.link.peak_bandwidth
            denom = window * peak
            registry.gauge("link/h2d_utilization").set(
                now, (traffic.bytes_h2d - last_h2d) / denom
            )
            registry.gauge("link/d2h_utilization").set(
                now, (traffic.bytes_d2h - last_d2h) / denom
            )
            if traffic.bytes_d2d or last_d2d:
                registry.gauge("link/d2d_utilization").set(
                    now, (traffic.bytes_d2d - last_d2d) / denom
                )
            self._last = (now, traffic.bytes_h2d, traffic.bytes_d2h, traffic.bytes_d2d)

        # Residency and queue occupancy per GPU (the driver's lightweight
        # sampling accessor; ``inspect()`` is too heavy per engine event).
        for name, free, used, unused_q, discarded_q, used_q in driver.sample_occupancy():
            registry.gauge(name + "/free_frames").set(now, free)
            registry.gauge(name + "/used_frames").set(now, used)
            registry.gauge(name + "/unused_queue").set(now, unused_q)
            registry.gauge(name + "/discarded_queue").set(now, discarded_q)
            registry.gauge(name + "/used_queue").set(now, used_q)

        # Copy-engine and scheduler backlog.
        for label, in_use, queued in driver.sample_engines():
            registry.gauge(f"copy/{label}_in_use").set(now, in_use)
            registry.gauge(f"copy/{label}_queue").set(now, queued)
        registry.gauge("engine/heap_depth").set(now, env.heap_depth)
        registry.gauge("engine/event_count").set(now, env.event_count)

        registry.sync_counters(now, driver.counters)
