"""Driver-level instrumentation.

The paper's evaluation is built on instrumentation inside the UVM driver:
PCIe traffic counters per direction (Tables 4/6/8, Figures 3/5), fault and
mapping counters, and the redundant-memory-transfer characterization of
Figure 3.  This package is the simulated equivalent: every migration,
eviction and prefetch flows through a :class:`TrafficRecorder`, and the
:class:`RmtClassifier` resolves each transfer to *useful* or *redundant*
based on what the program subsequently does with the moved data.

On top of the aggregates, :mod:`repro.instrument.trace` records a
span-based timeline of simulated time (exported as Chrome trace-event
JSON for Perfetto) and :mod:`repro.instrument.metrics` collects
time-series gauges and histograms — see docs/OBSERVABILITY.md.
"""

from repro.instrument.counters import Counters
from repro.instrument.eventlog import EventLog
from repro.instrument.metrics import (
    EngineMonitorSampler,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.instrument.rmt import RmtClassifier, TransferFate
from repro.instrument.timeline import Span, Timeline
from repro.instrument.trace import (
    NULL_TRACER,
    NullTracer,
    TraceConfig,
    Tracer,
    merge_chrome_traces,
    validate_chrome_trace,
)
from repro.instrument.traffic import TrafficRecorder, TransferReason, TransferRecord

__all__ = [
    "Counters",
    "EventLog",
    "EngineMonitorSampler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RmtClassifier",
    "TraceConfig",
    "Tracer",
    "TransferFate",
    "Span",
    "Timeline",
    "TrafficRecorder",
    "TransferReason",
    "TransferRecord",
    "merge_chrome_traces",
    "validate_chrome_trace",
]
