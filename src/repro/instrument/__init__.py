"""Driver-level instrumentation.

The paper's evaluation is built on instrumentation inside the UVM driver:
PCIe traffic counters per direction (Tables 4/6/8, Figures 3/5), fault and
mapping counters, and the redundant-memory-transfer characterization of
Figure 3.  This package is the simulated equivalent: every migration,
eviction and prefetch flows through a :class:`TrafficRecorder`, and the
:class:`RmtClassifier` resolves each transfer to *useful* or *redundant*
based on what the program subsequently does with the moved data.
"""

from repro.instrument.counters import Counters
from repro.instrument.eventlog import EventLog
from repro.instrument.rmt import RmtClassifier, TransferFate
from repro.instrument.timeline import Span, Timeline
from repro.instrument.traffic import TrafficRecorder, TransferReason, TransferRecord

__all__ = [
    "Counters",
    "EventLog",
    "RmtClassifier",
    "TransferFate",
    "Span",
    "Timeline",
    "TrafficRecorder",
    "TransferReason",
    "TransferRecord",
]
