"""Fast-model calibration: pin the closed forms to simulator runs.

``python -m repro fastmodel calibrate`` (or running this module) runs
the discrete-event simulator over the default anchor grid — every fig5
DL workload across its full paper batch grid plus the three micro
workloads across the paper's oversubscription ratios, for all three UVM
systems — and writes the resulting :class:`~repro.fastmodel.model.
FastModel` to ``src/repro/fastmodel/calibration.json``.

Calibration is the only fast-model step that simulates; prediction
afterwards is pure arithmetic.  Anchors record the simulator's exact
results, so the committed file stays valid until simulator *semantics*
change — at which point ``python -m repro fastmodel validate`` (run on
every CI push) fails and tells you to regenerate.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Iterable, List, Optional

from repro.fastmodel.model import DEFAULT_CALIBRATION_PATH, FastModel

#: The paper's micro-workload oversubscription grid (Tables 3-8), plus
#: extra anchors: hashjoin's transfer-byte curve has a sharp knee
#: between 2x and 2.5x (the probe side of the join stops fitting), so
#: that region is anchored at 0.1x steps to keep piecewise-linear
#: interpolation inside the declared tolerance; the smooth tail gets
#: half-steps.
DEFAULT_RATIOS = (
    0.99, 1.5, 2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 3.0, 3.5, 4.0,
)

#: Systems the evaluation sweeps (No-UVM OOMs under oversubscription
#: and is not worth an anchor per point; add it explicitly if needed).
DEFAULT_SYSTEMS = ("UVM-opt", "UvmDiscard", "UvmDiscardLazy")


def default_calibration_points(scale: float = 0.125) -> List["SweepPoint"]:
    """The default anchor grid: fig5 DL sweeps + micro ratio sweeps."""
    from repro.harness.sweep import (
        DL_BATCH_GRID,
        PAPER_MICRO_WORKLOADS,
        SweepPoint,
    )

    points: List[SweepPoint] = []
    for network, batches in sorted(DL_BATCH_GRID.items()):
        for system in DEFAULT_SYSTEMS:
            for batch_size in batches:
                points.append(
                    SweepPoint(
                        workload=f"dl:{network}",
                        system=system,
                        batch_size=batch_size,
                        scale=scale,
                    )
                )
    for workload in PAPER_MICRO_WORKLOADS:
        for system in DEFAULT_SYSTEMS:
            for ratio in DEFAULT_RATIOS:
                points.append(
                    SweepPoint(
                        workload=workload,
                        system=system,
                        ratio=ratio,
                        scale=scale,
                    )
                )
    return points


def calibrate(
    model: FastModel,
    points: Iterable["SweepPoint"],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> FastModel:
    """Run the simulator at every anchor point and record the results.

    ``points`` must be exact-mode points (a fast-mode point here would
    recurse into the model being calibrated); snapshot-prefix grouping
    and the worker pool make the batch cheap.
    """
    from repro.harness.sweep import run_sweep

    points = list(points)
    for point in points:
        if point.mode != "exact":
            raise ValueError(
                f"calibration needs exact-mode points, got {point.label}"
            )
    report = run_sweep(points, jobs=jobs, progress=progress)
    for point, result in report.rows():
        model.record(point, result)
    return model


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fastmodel calibrate",
        description="Calibrate the analytical fast model against the "
        "discrete-event simulator and write calibration.json.",
    )
    parser.add_argument(
        "--output",
        default=str(DEFAULT_CALIBRATION_PATH),
        help="calibration file to write (default: the committed one)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.125,
        help="workload scale factor of the anchor grid (default 0.125)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="simulator worker processes (default 1)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )
    args = parser.parse_args(argv)

    model = FastModel()
    points = default_calibration_points(scale=args.scale)
    started = time.monotonic()
    calibrate(
        model,
        points,
        jobs=args.jobs,
        progress=None if args.quiet else print,
    )
    model.save(Path(args.output))
    print(
        f"calibrated {len(model.families)} families from {len(points)} "
        f"simulator runs in {time.monotonic() - started:.1f}s -> "
        f"{args.output}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
