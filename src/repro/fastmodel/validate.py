"""Differential validation: fast model vs the discrete-event simulator.

``python -m repro fastmodel validate`` (the CI ``fastmodel-validate``
job) re-runs the simulator at a probe set spanning every fig5 DL
workload and the micro workloads at multiple oversubscription ratios —
anchor positions, where predictions must match exactly, and midpoints
between anchors, where the interpolation error must stay inside the
model's declared per-field tolerance.  Any drift in simulator semantics
therefore fails CI here first, with a message to re-run
``python -m repro fastmodel calibrate``.

The harness also measures the speedup — wall time of the exact
simulator runs over wall time of the corresponding predictions — and
can gate on a floor (``--min-speedup``).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.fastmodel.model import FastModel, default_model

#: Absolute slack added to every relative bound, so fields that are
#: exactly zero in the simulator (e.g. D2H traffic of a read-only
#: workload) compare clean against a zero prediction.
ABSOLUTE_SLACK = 1e-9


@dataclass
class Deviation:
    """One field of one probe point, compared fast-vs-exact."""

    label: str
    field: str
    fast: float
    exact: float
    tolerance: float

    @property
    def error(self) -> float:
        return abs(self.fast - self.exact)

    @property
    def bound(self) -> float:
        return self.tolerance * abs(self.exact) + ABSOLUTE_SLACK

    @property
    def ok(self) -> bool:
        return self.error <= self.bound

    def __str__(self) -> str:
        rel = self.error / abs(self.exact) if self.exact else float("inf")
        return (
            f"{self.label}: {self.field} fast={self.fast:.6g} "
            f"exact={self.exact:.6g} (rel err {rel:.2%}, "
            f"tolerance {self.tolerance:.0%})"
        )


@dataclass
class ValidationReport:
    """Everything the differential harness measured."""

    deviations: List[Deviation] = field(default_factory=list)
    #: Points where one side reported OOM and the other did not.
    oom_mismatches: List[str] = field(default_factory=list)
    probes: int = 0
    exact_seconds: float = 0.0
    fast_seconds: float = 0.0

    @property
    def failures(self) -> List[Deviation]:
        return [d for d in self.deviations if not d.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.oom_mismatches

    @property
    def speedup(self) -> float:
        if self.fast_seconds <= 0:
            return float("inf")
        return self.exact_seconds / self.fast_seconds

    def summary(self) -> str:
        worst = max(
            (
                d.error / (abs(d.exact) or 1.0)
                for d in self.deviations
            ),
            default=0.0,
        )
        return (
            f"{self.probes} probes, {len(self.deviations)} field "
            f"comparisons, {len(self.failures)} out of tolerance, "
            f"{len(self.oom_mismatches)} OOM mismatches; worst relative "
            f"error {worst:.3%}; fast model {self.speedup:,.0f}x faster "
            f"({self.exact_seconds:.2f}s simulated vs "
            f"{self.fast_seconds * 1e3:.2f}ms predicted)"
        )


def default_probe_points(scale: float = 0.125) -> List["SweepPoint"]:
    """Anchors and midpoints spanning every fig5 workload + the micros.

    Per DL network and system: the smallest and largest paper batch
    sizes (anchor hits — must be exact) and an off-grid batch between
    the first two (interpolation).  Per micro workload and system: the
    2.0x anchor and the 2.25x / 3.75x midpoints (two oversubscription
    ratios off the anchor grid, one inside hashjoin's knee region).
    """
    from repro.harness.sweep import (
        DL_BATCH_GRID,
        PAPER_MICRO_WORKLOADS,
        SweepPoint,
    )

    from repro.fastmodel.calibrate import DEFAULT_SYSTEMS

    points: List[SweepPoint] = []
    for network, batches in sorted(DL_BATCH_GRID.items()):
        probe_batches = (
            batches[0],
            (batches[0] + batches[1]) // 2,  # off-grid: interpolated
            batches[-1],
        )
        for system in DEFAULT_SYSTEMS:
            for batch_size in probe_batches:
                points.append(
                    SweepPoint(
                        workload=f"dl:{network}",
                        system=system,
                        batch_size=batch_size,
                        scale=scale,
                    )
                )
    for workload in PAPER_MICRO_WORKLOADS:
        for system in DEFAULT_SYSTEMS:
            for ratio in (2.0, 2.25, 3.75):
                points.append(
                    SweepPoint(
                        workload=workload, system=system, ratio=ratio,
                        scale=scale,
                    )
                )
    return points


def validate(
    model: FastModel,
    points: Iterable["SweepPoint"],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> ValidationReport:
    """Compare ``model.predict`` with fresh simulator runs at ``points``."""
    from repro.harness.sweep import run_sweep

    points = list(points)
    report = ValidationReport(probes=len(points))

    started = time.perf_counter()
    predictions = [model.predict(point) for point in points]
    report.fast_seconds = time.perf_counter() - started

    started = time.monotonic()
    sweep = run_sweep(points, jobs=jobs, progress=progress)
    report.exact_seconds = time.monotonic() - started

    for point, fast, exact in zip(points, predictions, sweep.results):
        if (fast is None) != (exact is None):
            side = "fast" if fast is None else "simulator"
            report.oom_mismatches.append(
                f"{point.label}: only the {side} side reported OOM"
            )
            continue
        if fast is None or exact is None:
            continue
        fast_dict, exact_dict = fast.to_dict(), exact.to_dict()
        for name, tolerance in sorted(model.tolerance.items()):
            fast_value, exact_value = fast_dict.get(name), exact_dict.get(name)
            if fast_value is None and exact_value is None:
                continue
            report.deviations.append(
                Deviation(
                    label=point.label,
                    field=name,
                    fast=float(fast_value or 0.0),
                    exact=float(exact_value or 0.0),
                    tolerance=tolerance,
                )
            )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fastmodel validate",
        description="Differentially validate fast-model predictions "
        "against the discrete-event simulator.",
    )
    parser.add_argument(
        "--scale", type=float, default=0.125,
        help="probe workload scale; must match the calibration scale "
        "(default 0.125)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="simulator worker processes (default 1)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail unless the fast model beats the simulator by this "
        "wall-clock factor (e.g. 100)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )
    args = parser.parse_args(argv)

    model = default_model()
    points = default_probe_points(scale=args.scale)
    report = validate(
        model,
        points,
        jobs=args.jobs,
        progress=None if args.quiet else print,
    )
    print(report.summary())
    for mismatch in report.oom_mismatches:
        print(f"FASTMODEL OOM MISMATCH: {mismatch}", file=sys.stderr)
    for deviation in report.failures:
        print(f"FASTMODEL DRIFT: {deviation}", file=sys.stderr)
    if not report.ok:
        print(
            "fast model disagrees with the simulator; if simulator "
            "semantics changed intentionally, re-run "
            "`python -m repro fastmodel calibrate`",
            file=sys.stderr,
        )
        return 1
    if args.min_speedup is not None and report.speedup < args.min_speedup:
        print(
            f"FASTMODEL SPEEDUP: {report.speedup:.0f}x < required "
            f"{args.min_speedup:g}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
