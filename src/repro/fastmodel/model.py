"""The analytical fast model: calibrated per-family closed forms.

A *family* is every sweep-point input except the point's sweep axis —
``(workload, system, link, gpu, scale, driver overrides, batches)``.
Micro workloads sweep the oversubscription ratio; DL trainers sweep the
batch size (their ``ratio`` field is ignored by the simulator, so the
family key drops it).  Within a family the model keeps a sorted list of
*anchors*: axis positions where the discrete-event simulator was
actually run, together with its full result.

Prediction evaluates closed forms anchored on those runs:

- **transfer bytes** (total / H2D / D2H / redundant / useful) are
  piecewise-linear in the axis.  Migration is block-granular, so over a
  region with no policy phase change the moved bytes are an affine
  function of the oversubscribed footprint (micro) or of the per-batch
  activation set (DL); the anchors pin the affine pieces.
- **runtime** follows the same piecewise form: simulated time is the
  kernel/host critical path plus link occupancy, and occupancy is
  bytes over a fixed effective bandwidth, so it inherits the byte
  curves' shape.
- **counters** (faults, migrations, evictions, ...) interpolate the
  same way, rounded back to integers.

At an anchor the prediction *is* the recorded simulator result —
bit-for-bit — and between anchors the differential harness
(:mod:`repro.fastmodel.validate`) bounds the interpolation error
against fresh simulator runs within :attr:`FastModel.tolerance`.
The model refuses to extrapolate outside its anchor range and refuses
to bridge an out-of-memory boundary (one anchor OOM, the other not):
both raise :class:`UncalibratedPointError` rather than guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.harness.results import ExperimentResult

#: Schema version of the persisted calibration file.
CALIBRATION_VERSION = 1

#: Where :func:`default_model` looks for the committed calibration.
DEFAULT_CALIBRATION_PATH = Path(__file__).with_name("calibration.json")

#: Declared relative tolerance of interpolated predictions per result
#: field, validated by :mod:`repro.fastmodel.validate` on every CI run.
#: Anchored predictions are exact; these bounds cover midpoints between
#: anchors.  ``redundant_gb`` gets extra slack because it is a small
#: difference of two large byte counts for the discard systems.
DEFAULT_TOLERANCE: Dict[str, float] = {
    "elapsed_seconds": 0.10,
    "traffic_gb": 0.10,
    "traffic_h2d_gb": 0.10,
    "traffic_d2h_gb": 0.15,
    "redundant_gb": 0.25,
    "useful_gb": 0.10,
    "metric": 0.10,
}

#: Result fields interpolated as floats.
_FLOAT_FIELDS = (
    "elapsed_seconds",
    "traffic_gb",
    "traffic_h2d_gb",
    "traffic_d2h_gb",
    "redundant_gb",
    "useful_gb",
)


class FastModelError(ConfigurationError):
    """The fast model cannot answer; fall back to ``mode="exact"``."""


class UncalibratedPointError(FastModelError):
    """No calibration covers the requested point."""


def family_key(point) -> Dict[str, object]:
    """The calibration-family identity of ``point`` (axis excluded).

    DL points drop ``ratio`` (the trainer ignores it) and micro points
    drop ``batch_size`` (always ``None`` for them), so every point on
    one sweep axis lands in the same family.
    """
    key: Dict[str, object] = {
        "workload": point.workload,
        "system": point.system,
        "link": point.link,
        "gpu": point.gpu,
        "scale": point.scale,
        "driver": [list(item) for item in point.driver],
    }
    if point.is_dl and point.batches is not None:
        key["batches"] = point.batches
    return key


def _key_str(key: Mapping[str, object]) -> str:
    return json.dumps(key, sort_keys=True)


def axis_value(point) -> float:
    """The point's position on its family's sweep axis."""
    return float(point.batch_size) if point.is_dl else float(point.ratio)


@dataclass
class Anchor:
    """One simulator run pinning the family's curves at axis ``x``.

    ``result`` is the :meth:`ExperimentResult.to_dict` payload, or
    ``None`` when the simulator reported out-of-memory at this anchor.
    """

    x: float
    result: Optional[Dict[str, object]]

    def to_dict(self) -> Dict[str, object]:
        return {"x": self.x, "result": self.result}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Anchor":
        result = data["result"]
        if result is not None:
            ExperimentResult.from_dict(result)  # validate shape early
        return cls(x=float(data["x"]), result=result)  # type: ignore[arg-type]


@dataclass
class Family:
    """Calibrated curves for one sweep family."""

    key: Dict[str, object]
    anchors: List[Anchor] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.anchors.sort(key=lambda a: a.x)

    def add(self, anchor: Anchor) -> None:
        self.anchors = [a for a in self.anchors if a.x != anchor.x]
        self.anchors.append(anchor)
        self.anchors.sort(key=lambda a: a.x)

    @property
    def span(self) -> Tuple[float, float]:
        return (self.anchors[0].x, self.anchors[-1].x)

    def bracket(self, x: float) -> Tuple[Anchor, Anchor, float]:
        """The anchors around ``x`` and the interpolation weight.

        Returns ``(lo, hi, t)`` with ``t`` in ``[0, 1]``; an exact
        anchor hit returns it twice with ``t = 0``.
        """
        lo_x, hi_x = self.span
        if not lo_x <= x <= hi_x:
            raise UncalibratedPointError(
                f"axis value {x:g} is outside the calibrated range "
                f"[{lo_x:g}, {hi_x:g}]; re-run calibration with wider "
                "anchors (python -m repro fastmodel calibrate)"
            )
        for anchor in self.anchors:
            if anchor.x == x:
                return anchor, anchor, 0.0
        hi = next(a for a in self.anchors if a.x > x)
        lo = max((a for a in self.anchors if a.x < x), key=lambda a: a.x)
        return lo, hi, (x - lo.x) / (hi.x - lo.x)

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "anchors": [a.to_dict() for a in self.anchors],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Family":
        return cls(
            key=dict(data["key"]),  # type: ignore[arg-type]
            anchors=[Anchor.from_dict(a) for a in data["anchors"]],  # type: ignore[union-attr]
        )


def _interpolate(
    lo: Dict[str, object], hi: Dict[str, object], t: float, point
) -> Dict[str, object]:
    """Evaluate the family's closed forms at weight ``t`` between two
    anchor results, relabelled for ``point``."""
    out: Dict[str, object] = {
        "system": point.system,
        "config": point.config_label,
    }
    for name in _FLOAT_FIELDS:
        a, b = float(lo[name]), float(hi[name])
        out[name] = a + (b - a) * t
    lo_metric, hi_metric = lo.get("metric"), hi.get("metric")
    if lo_metric is None or hi_metric is None:
        out["metric"] = None
    else:
        out["metric"] = float(lo_metric) + (float(hi_metric) - float(lo_metric)) * t
    counters: Dict[str, int] = {}
    lo_counters: Mapping[str, float] = lo.get("counters") or {}
    hi_counters: Mapping[str, float] = hi.get("counters") or {}
    for name in sorted(set(lo_counters) | set(hi_counters)):
        a, b = float(lo_counters.get(name, 0)), float(hi_counters.get(name, 0))
        counters[name] = round(a + (b - a) * t)
    out["counters"] = counters
    lo_dropped = float(lo.get("log_dropped", 0))
    hi_dropped = float(hi.get("log_dropped", 0))
    out["log_dropped"] = round(lo_dropped + (hi_dropped - lo_dropped) * t)
    return out


class FastModel:
    """A calibration store that predicts :class:`ExperimentResult` rows."""

    def __init__(
        self, tolerance: Optional[Mapping[str, float]] = None
    ) -> None:
        self.families: Dict[str, Family] = {}
        self.tolerance: Dict[str, float] = dict(tolerance or DEFAULT_TOLERANCE)

    # -- calibration bookkeeping ----------------------------------------

    def record(self, point, result: Optional[ExperimentResult]) -> None:
        """Admit one simulator run as an anchor (``None`` = OOM)."""
        key = family_key(point)
        family = self.families.setdefault(_key_str(key), Family(key=key))
        family.add(
            Anchor(
                x=axis_value(point),
                result=None if result is None else result.to_dict(),
            )
        )

    def family_for(self, point) -> Optional[Family]:
        return self.families.get(_key_str(family_key(point)))

    # -- prediction ------------------------------------------------------

    def predict(self, point) -> Optional[ExperimentResult]:
        """The fast-model answer for ``point``.

        Returns ``None`` for a calibrated out-of-memory configuration
        (mirroring :func:`~repro.harness.sweep.execute_point`), raises
        :class:`UncalibratedPointError` when no calibration covers the
        point, the axis value falls outside the anchor range, or the
        bracketing anchors straddle an OOM boundary.
        """
        family = self.family_for(point)
        if family is None or not family.anchors:
            raise UncalibratedPointError(
                f"no fast-model calibration for {point.label}; run "
                "`python -m repro fastmodel calibrate` or use the exact "
                f"simulator (calibrated families: {len(self.families)})"
            )
        lo, hi, t = family.bracket(axis_value(point))
        if lo.result is None and hi.result is None:
            return None
        if lo.result is None or hi.result is None:
            raise UncalibratedPointError(
                f"{point.label}: anchors at {lo.x:g} and {hi.x:g} "
                "straddle an out-of-memory boundary; calibrate a denser "
                "grid around it"
            )
        if t == 0.0:
            data = dict(lo.result)
            data["system"] = point.system
            data["config"] = point.config_label
            return ExperimentResult.from_dict(data)
        return ExperimentResult.from_dict(
            _interpolate(lo.result, hi.result, t, point)
        )

    # -- persistence -----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "version": CALIBRATION_VERSION,
            "tolerance": self.tolerance,
            "families": [
                self.families[key].to_dict() for key in sorted(self.families)
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "FastModel":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FastModelError(f"corrupt calibration file: {exc}") from None
        if not isinstance(payload, dict):
            raise FastModelError("corrupt calibration file: not an object")
        if payload.get("version") != CALIBRATION_VERSION:
            raise FastModelError(
                f"calibration version {payload.get('version')!r} != "
                f"{CALIBRATION_VERSION}; re-run "
                "`python -m repro fastmodel calibrate`"
            )
        model = cls(tolerance=payload.get("tolerance"))
        try:
            for family_data in payload.get("families", []):
                family = Family.from_dict(family_data)
                model.families[_key_str(family.key)] = family
        except (KeyError, TypeError, ValueError) as exc:
            raise FastModelError(f"corrupt calibration family: {exc}") from None
        return model

    def save(self, path: Path) -> None:
        path.write_text(self.to_json())

    @classmethod
    def load(cls, path: Path) -> "FastModel":
        try:
            text = path.read_text()
        except OSError as exc:
            raise FastModelError(
                f"cannot read fast-model calibration {path}: {exc}; run "
                "`python -m repro fastmodel calibrate` to create it"
            ) from None
        return cls.from_json(text)


_DEFAULT_MODEL: Optional[FastModel] = None


def default_model() -> FastModel:
    """The committed calibration, loaded once per process."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = FastModel.load(DEFAULT_CALIBRATION_PATH)
    return _DEFAULT_MODEL


def reset_default_model() -> None:
    """Drop the cached default model (tests that swap the file)."""
    global _DEFAULT_MODEL
    _DEFAULT_MODEL = None


def predict_point(point) -> Optional[ExperimentResult]:
    """Answer one ``mode="fast"`` sweep point from the default model.

    This is the hook :func:`repro.harness.sweep.execute_point`
    dispatches to; it never simulates anything.
    """
    return default_model().predict(point)
