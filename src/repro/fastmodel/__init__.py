"""Calibrated analytical fast model of the simulator (``mode="fast"``).

The discrete-event simulator answers one sweep point in tens of
milliseconds to seconds; the fast model answers the same point in
microseconds by evaluating closed forms instead of simulating events.
Per (workload, system, link, gpu, scale, driver) *family*, the model
stores transfer-byte and runtime curves calibrated against real
simulator runs at a handful of anchor positions along the family's
sweep axis (oversubscription ratio for the micro workloads, batch size
for the DL trainers) and interpolates between them; at an anchor it
reproduces the simulator's numbers exactly.

Entry points:

- :func:`predict_point` — the hook :func:`repro.harness.sweep.
  execute_point` dispatches to for ``SweepPoint(mode="fast")``,
- :class:`FastModel` / :func:`default_model` — the calibration store
  (committed at ``src/repro/fastmodel/calibration.json``),
- :mod:`repro.fastmodel.calibrate` — regenerate the calibration from
  simulator runs (``python -m repro fastmodel calibrate``),
- :mod:`repro.fastmodel.validate` — the differential harness CI runs
  to check fast-model predictions against the simulator within the
  declared tolerance (``python -m repro fastmodel validate``).

Fast results live in a disjoint cache-key namespace: ``mode`` is part
of the serialized point, so a fast outcome can never alias an exact
simulation in the sweep cache or the experiment server, in either
direction.
"""

from repro.fastmodel.model import (
    DEFAULT_TOLERANCE,
    FastModel,
    FastModelError,
    UncalibratedPointError,
    default_model,
    predict_point,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "FastModel",
    "FastModelError",
    "UncalibratedPointError",
    "default_model",
    "predict_point",
]
