"""FIR — finite impulse response filter (§7.2, Tables 3 and 4).

"The program iterates through a large input buffer, prefetches a window
of the host data to the FIR GPU kernel and calculates the FIR filter.
The target buffer to discard is the sliding window of the input buffer at
the end of each iteration, because the sliding window becomes useless."

Structure per window *i*:

1. prefetch input window *i* (H2D, overlaps the previous kernel) and
   prefault the matching output window,
2. FIR kernel: READ input window, WRITE output window,
3. discard the consumed input window.

Without discard, the consumed windows are LRU-evicted under memory
pressure — pure redundant D2H traffic, since nothing ever reads them
again.  Discard lets eviction reclaim them for free, so the savings are a
constant ≈(input − last window) at every oversubscription ratio, exactly
the paper's "consistently eliminate 5.56 GB".  At higher ratios the
*output* (live data) also overflows and its eviction traffic grows in
every system — the rising baseline of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import ConfigurationError
from repro.gpu.access import SequentialPattern
from repro.harness.results import ExperimentResult
from repro.harness.runner import ratio_label, run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.interconnect.link import Link
from repro.units import BIG_PAGE, GB, align_up


@dataclass
class FirConfig:
    """FIR workload parameters (defaults match the paper's §7.2 setup)."""

    #: Total input signal size ("5.66 GB of input data is prefetched").
    input_bytes: int = int(5.66 * GB)
    #: Number of sliding windows the input is consumed in.
    num_windows: int = 8
    #: Sustained GPU throughput of the FIR kernel over its window bytes.
    kernel_throughput: float = 200 * GB
    #: Fault waves per kernel launch.
    waves: int = 8

    def __post_init__(self) -> None:
        if self.num_windows < 1:
            raise ConfigurationError("num_windows must be >= 1")
        if self.input_bytes < self.num_windows * BIG_PAGE:
            raise ConfigurationError("input too small for the window count")

    @property
    def window_bytes(self) -> int:
        """One window, rounded up to whole 2 MiB blocks."""
        return align_up(self.input_bytes // self.num_windows, BIG_PAGE)

    @property
    def app_bytes(self) -> int:
        """GPU memory consumption used for the oversubscription ratio:
        the input stream plus the equally sized impulse-response output."""
        return 2 * self.num_windows * self.window_bytes

    def scaled(self, factor: float) -> "FirConfig":
        """Shrink the workload for fast runs (pair with ``gpu.scaled``)."""
        return FirConfig(
            input_bytes=max(
                self.num_windows * BIG_PAGE, int(self.input_bytes * factor)
            ),
            num_windows=self.num_windows,
            kernel_throughput=self.kernel_throughput,
            waves=self.waves,
        )


class FirWorkload:
    """Runs the FIR experiment for one evaluated system."""

    def __init__(self, config: Optional[FirConfig] = None) -> None:
        self.config = config or FirConfig()

    def setup_program(self) -> Callable[[CudaRuntime], Generator]:
        """The system-independent setup prefix: allocate the buffers and
        generate the input signal on the host.  CPU-only, so the runtime
        is quiescent (and snapshottable) when it finishes; the buffers
        are handed to :meth:`body_program` through ``cuda.session``."""
        cfg = self.config

        def setup(cuda: CudaRuntime) -> Generator:
            window = cfg.window_bytes
            total = cfg.num_windows * window
            signal = cuda.malloc_managed(total, "fir_input")
            response = cuda.malloc_managed(total, "fir_output")
            yield from cuda.host_write(signal)  # generate the input signal
            cuda.session["fir_input"] = signal
            cuda.session["fir_output"] = response

        return setup

    def body_program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The measured body for ``system``, resuming from a completed
        :meth:`setup_program` (possibly in a forked runtime)."""
        cfg = self.config
        policy = DiscardPolicy(system)

        def body(cuda: CudaRuntime) -> Generator:
            window = cfg.window_bytes
            signal = cuda.session["fir_input"]
            response = cuda.session["fir_output"]
            cuda.begin_measurement()  # §7.1: exclude input preprocessing
            compute = cuda.create_stream("compute")
            transfer = cuda.create_stream("transfer")
            previous_kernel = None
            for i in range(cfg.num_windows):
                in_rng = signal.subrange(i * window, window)
                out_rng = response.subrange(i * window, window)
                # Overlap: the prefetch runs on the transfer stream while
                # the previous window's kernel computes.
                cuda.prefetch_async(signal, rng=in_rng, stream=transfer)
                # Gating on the output prefetch (enqueued last on the
                # transfer stream) implies the input one completed too.
                prefetched = cuda.prefetch_async(
                    response, rng=out_rng, stream=transfer
                )
                kernel = KernelSpec(
                    f"fir_{i}",
                    [
                        BufferAccess(
                            signal, AccessMode.READ, in_rng, SequentialPattern()
                        ),
                        BufferAccess(
                            response, AccessMode.WRITE, out_rng, SequentialPattern()
                        ),
                    ],
                    duration=window / cfg.kernel_throughput,
                    waves=cfg.waves,
                )
                compute.wait_for(prefetched)  # kernel starts after its H2D
                previous_kernel = cuda.launch(kernel, stream=compute)
                # The consumed window is dead; FIR never revisits it, so
                # the site is not prefetch-paired and stays eager even in
                # the UvmDiscardLazy system (§7.1).
                mode = policy.mode_for(paired_with_prefetch=False)
                if mode is not None:
                    cuda.discard_async(signal, rng=in_rng, mode=mode, stream=compute)
            yield from cuda.synchronize()

        return body

    def program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The host program for ``system`` (a generator function)."""
        setup = self.setup_program()
        body = self.body_program(system)

        def program(cuda: CudaRuntime) -> Generator:
            yield from setup(cuda)
            yield from body(cuda)

        return program

    def run(
        self,
        system: System,
        ratio: float,
        gpu: GpuSpec,
        link: Link,
        driver_config: Optional[UvmDriverConfig] = None,
    ) -> ExperimentResult:
        """Run one Table 3/4 cell."""
        return run_uvm_experiment(
            self.program(system),
            system.value,
            ratio_label(ratio),
            self.config.app_bytes,
            ratio,
            gpu,
            link,
            driver_config=driver_config,
        )
