"""Tree reduction — log-depth fan-in over a shrinking working set.

UVMBench's reduction family: level *k* reads a span of ``s_k`` bytes and
writes ``s_k / fanin``, halving (by ``fanin``) until one block remains.
The levels alternate between the input buffer and a scratch buffer, so
every level's consumed source span is dead the moment its kernel
retires:

- intermediate levels discard the span and prefetch the sub-span that
  level *k+1* writes into — prefetch-paired, lazy under UvmDiscardLazy;
- the final level's source is never touched again — unpaired, eager
  (the FIR shape).

Sequential access throughout: reduction is the prefetch-friendliest of
the new categories, so its discard savings isolate the redundant-D2H
elimination from thrash effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Tuple

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import ConfigurationError
from repro.gpu.access import SequentialPattern
from repro.harness.results import ExperimentResult
from repro.harness.runner import ratio_label, run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.interconnect.link import Link
from repro.units import BIG_PAGE, GB, align_up


@dataclass
class ReductionConfig:
    """Tree-reduction workload parameters."""

    #: Bytes of input values to reduce.
    input_bytes: int = 4 * GB
    #: Fan-in per level: each level shrinks the span by this factor.
    fanin: int = 8
    #: Sustained GPU throughput over the bytes a level reads.
    kernel_throughput: float = 220 * GB
    #: Fault waves per kernel launch (capped by the level's block count).
    waves: int = 4

    def __post_init__(self) -> None:
        if self.fanin < 2:
            raise ConfigurationError("fanin must be >= 2")
        if self.input_bytes < BIG_PAGE:
            raise ConfigurationError("input must cover at least one block")

    @property
    def scratch_bytes(self) -> int:
        """The first level's output span (the largest intermediate)."""
        return align_up(self.input_bytes // self.fanin, BIG_PAGE)

    @property
    def app_bytes(self) -> int:
        """GPU footprint: the input plus the reduction scratch."""
        return align_up(self.input_bytes, BIG_PAGE) + self.scratch_bytes

    def level_spans(self) -> List[int]:
        """Byte spans consumed per level: ``[s_0, s_1, ...]`` down to one
        block (always at least one level)."""
        spans = [align_up(self.input_bytes, BIG_PAGE)]
        while spans[-1] > BIG_PAGE:
            spans.append(align_up(spans[-1] // self.fanin, BIG_PAGE))
        return spans[:-1] if len(spans) > 1 else spans

    def scaled(self, factor: float) -> "ReductionConfig":
        """Shrink the reduction for fast runs (pair with ``gpu.scaled``)."""
        return ReductionConfig(
            input_bytes=max(BIG_PAGE, int(self.input_bytes * factor)),
            fanin=self.fanin,
            kernel_throughput=self.kernel_throughput,
            waves=self.waves,
        )


class ReductionWorkload:
    """Runs the tree-reduction experiment for one evaluated system."""

    def __init__(self, config: Optional[ReductionConfig] = None) -> None:
        self.config = config or ReductionConfig()

    def setup_program(self) -> Callable[[CudaRuntime], Generator]:
        """Allocate the buffers and generate the input values on the
        host (CPU-only, quiescent at the end)."""
        cfg = self.config

        def setup(cuda: CudaRuntime) -> Generator:
            values = cuda.malloc_managed(
                align_up(cfg.input_bytes, BIG_PAGE), "reduce_values"
            )
            scratch = cuda.malloc_managed(cfg.scratch_bytes, "reduce_scratch")
            yield from cuda.host_write(values)  # generate the inputs
            cuda.session["reduce_values"] = values
            cuda.session["reduce_scratch"] = scratch

        return setup

    def _levels(self) -> List[Tuple[int, int]]:
        """Per-level (source span, destination span) byte sizes."""
        spans = self.config.level_spans()
        out = []
        for k, span in enumerate(spans):
            dst = spans[k + 1] if k + 1 < len(spans) else BIG_PAGE
            out.append((span, dst))
        return out

    def body_program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The measured reduction tree for ``system``."""
        cfg = self.config
        policy = DiscardPolicy(system)
        levels = self._levels()

        def body(cuda: CudaRuntime) -> Generator:
            values = cuda.session["reduce_values"]
            scratch = cuda.session["reduce_scratch"]
            cuda.begin_measurement()
            compute = cuda.create_stream("compute")
            transfer = cuda.create_stream("transfer")
            cuda.prefetch_async(values, stream=transfer)
            buffers = [values, scratch]
            for k, (src_span, dst_span) in enumerate(levels):
                source = buffers[k % 2]
                target = buffers[(k + 1) % 2]
                src_rng = source.subrange(0, src_span)
                dst_rng = target.subrange(0, dst_span)
                # Level k writes into a prefix of the buffer level k-1
                # consumed and discarded — prefetching it back first is
                # the §5.2 pairing for that earlier discard.
                prefetched = cuda.prefetch_async(
                    target, rng=dst_rng, stream=transfer
                )
                kernel = KernelSpec(
                    f"reduce_level_{k}",
                    [
                        BufferAccess(
                            source, AccessMode.READ, src_rng, SequentialPattern()
                        ),
                        BufferAccess(
                            target, AccessMode.WRITE, dst_rng, SequentialPattern()
                        ),
                    ],
                    duration=src_span / cfg.kernel_throughput,
                    waves=max(1, min(cfg.waves, src_span // BIG_PAGE)),
                )
                compute.wait_for(prefetched)
                cuda.launch(kernel, stream=compute)
                # The consumed span is dead; level k+1 prefetches a
                # prefix of it back, so every discard but the last is
                # prefetch-paired.
                paired = k + 1 < len(levels)
                mode = policy.mode_for(paired_with_prefetch=paired)
                if mode is not None:
                    cuda.discard_async(
                        source, rng=src_rng, mode=mode, stream=compute
                    )
            yield from cuda.synchronize()

        return body

    def program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The host program for ``system`` (a generator function)."""
        setup = self.setup_program()
        body = self.body_program(system)

        def program(cuda: CudaRuntime) -> Generator:
            yield from setup(cuda)
            yield from body(cuda)

        return program

    def run(
        self,
        system: System,
        ratio: float,
        gpu: GpuSpec,
        link: Link,
        driver_config: Optional[UvmDriverConfig] = None,
    ) -> ExperimentResult:
        """Run one oversubscription cell of the reduction table."""
        return run_uvm_experiment(
            self.program(system),
            system.value,
            ratio_label(ratio),
            self.config.app_bytes,
            ratio,
            gpu,
            link,
            driver_config=driver_config,
        )
