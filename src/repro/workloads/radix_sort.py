"""Radix-sort — the thrashing microbenchmark (§7.3, Tables 5 and 6).

"In each iteration, it launches a GPU kernel to perform local radix sorts
with results saved in a temporary buffer.  At this time, the input buffer
can be discarded.  It then launches another GPU kernel, reorders the
local partitions from the temporary buffer and overwrites the results
back to the input buffer.  At this time, the temporary buffer can be
discarded."

Two properties make this the paper's stress case:

- **Irregular access.** The reorder phase scatters across the whole
  footprint ("the GPU does not follow a deterministic pattern to access
  parallel columns of data"), so an oversubscribed kernel thrashes: the
  dominant traffic at ≥200 % that discard cannot remove.
- **Eager-discard overhead.** When everything fits (<100 %), discard +
  prefetch pairs execute every iteration with *zero* transfers to save;
  `UvmDiscard`'s unmap/remap round-trips show up as a >1.2x slowdown that
  `UvmDiscardLazy` erases — the paper's argument for hardware dirty bits.

Prefetches are issued only when memory is not oversubscribed (§7.3:
manual prefetching of a thrashing kernel "usually does more harm").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import ConfigurationError
from repro.gpu.access import IrregularPattern, SequentialPattern
from repro.harness.results import ExperimentResult
from repro.harness.runner import ratio_label, run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.interconnect.link import Link
from repro.units import GB


@dataclass
class RadixSortConfig:
    """Radix-sort parameters, sized to reproduce Tables 5/6."""

    #: Key+value payload ("a large input array of keys and values").
    array_bytes: int = int(5.0 * GB)
    #: Digit iterations (local sort + reorder per iteration).
    iterations: int = 8
    #: Irregular re-use per kernel: how many times the reorder phase
    #: revisits each block.  Drives the thrashing amplification.
    passes: int = 2
    #: Sustained kernel throughput over touched bytes.
    kernel_throughput: float = 800 * GB
    #: Fault waves per kernel launch.
    waves: int = 16

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if self.array_bytes <= 0:
            raise ConfigurationError("array_bytes must be positive")

    @property
    def app_bytes(self) -> int:
        """Input array plus the equally sized temporary buffer."""
        return 2 * self.array_bytes

    def scaled(self, factor: float) -> "RadixSortConfig":
        return RadixSortConfig(
            array_bytes=int(self.array_bytes * factor),
            iterations=self.iterations,
            passes=self.passes,
            kernel_throughput=self.kernel_throughput,
            waves=self.waves,
        )


class RadixSortWorkload:
    """Runs the radix-sort experiment for one evaluated system."""

    def __init__(self, config: Optional[RadixSortConfig] = None) -> None:
        self.config = config or RadixSortConfig()

    def setup_program(self) -> Callable[[CudaRuntime], Generator]:
        """The system-independent setup prefix: allocate both buffers and
        generate the keys/values on the host.  CPU-only, so the runtime
        is quiescent (and snapshottable) afterwards."""
        cfg = self.config

        def setup(cuda: CudaRuntime) -> Generator:
            array = cuda.malloc_managed(cfg.array_bytes, "radix_input")
            temp = cuda.malloc_managed(cfg.array_bytes, "radix_temp")
            yield from cuda.host_write(array)  # generate keys and values
            cuda.session["radix_input"] = array
            cuda.session["radix_temp"] = temp

        return setup

    def body_program(
        self, system: System, prefetch: Optional[bool] = None
    ) -> Callable[[CudaRuntime], Generator]:
        """The measured body for ``system``, resuming from a completed
        :meth:`setup_program` (possibly in a forked runtime).

        ``prefetch=None`` applies the paper's policy (prefetch only when
        not oversubscribed — decided inside from the occupant state);
        ``True``/``False`` force it, enabling the §7.3 "3.9x without
        prefetch" ablation.
        """
        cfg = self.config
        policy = DiscardPolicy(system)

        def body(cuda: CudaRuntime) -> Generator:
            array = cuda.session["radix_input"]
            temp = cuda.session["radix_temp"]
            cuda.begin_measurement()  # §7.1: exclude input preprocessing
            fits = cuda.driver.gpu_free_bytes(cuda.gpu.name) >= cfg.app_bytes
            use_prefetch = fits if prefetch is None else prefetch
            if use_prefetch:
                cuda.prefetch_async(array)
                cuda.prefetch_async(temp)
            kernel_time = 2 * cfg.array_bytes * cfg.passes / cfg.kernel_throughput
            for iteration in range(cfg.iterations):
                local_sort = KernelSpec(
                    f"local_sort_{iteration}",
                    [
                        BufferAccess(
                            array,
                            AccessMode.READ,
                            pattern=IrregularPattern(cfg.passes, seed=iteration),
                        ),
                        BufferAccess(
                            temp,
                            AccessMode.WRITE,
                            pattern=SequentialPattern(),
                        ),
                    ],
                    duration=kernel_time,
                    waves=cfg.waves,
                )
                cuda.launch(local_sort)
                # Local sorts consumed the input; it will be rebuilt by the
                # reorder kernel, which prefetch prefaults first.
                mode = policy.mode_for(paired_with_prefetch=use_prefetch)
                if mode is not None:
                    cuda.discard_async(array, mode=mode)
                if use_prefetch:
                    cuda.prefetch_async(array)
                reorder = KernelSpec(
                    f"reorder_{iteration}",
                    [
                        BufferAccess(
                            temp,
                            AccessMode.READ,
                            pattern=IrregularPattern(cfg.passes, seed=100 + iteration),
                        ),
                        BufferAccess(
                            array,
                            AccessMode.WRITE,
                            pattern=SequentialPattern(),
                        ),
                    ],
                    duration=kernel_time,
                    waves=cfg.waves,
                )
                cuda.launch(reorder)
                mode = policy.mode_for(paired_with_prefetch=use_prefetch)
                if mode is not None:
                    cuda.discard_async(temp, mode=mode)
                if use_prefetch and iteration + 1 < cfg.iterations:
                    cuda.prefetch_async(temp)
            yield from cuda.synchronize()

        return body

    def program(
        self, system: System, prefetch: Optional[bool] = None
    ) -> Callable[[CudaRuntime], Generator]:
        """The host program (setup prefix + measured body)."""
        setup = self.setup_program()
        body = self.body_program(system, prefetch=prefetch)

        def program(cuda: CudaRuntime) -> Generator:
            yield from setup(cuda)
            yield from body(cuda)

        return program

    def run(
        self,
        system: System,
        ratio: float,
        gpu: GpuSpec,
        link: Link,
        prefetch: Optional[bool] = None,
        driver_config: Optional[UvmDriverConfig] = None,
    ) -> ExperimentResult:
        """Run one Table 5/6 cell."""
        return run_uvm_experiment(
            self.program(system, prefetch=prefetch),
            system.value,
            ratio_label(ratio),
            self.config.app_bytes,
            ratio,
            gpu,
            link,
            driver_config=driver_config,
        )
