"""Hash-join — the GPU database workload (§7.4, Tables 7 and 8).

"The application first launches two GPU kernels that preprocess two
database tables.  Both kernels use many intermediate buffers that can be
discarded and their outputs become the input of the third GPU kernel
that computes the joined database table of the final results.  The
results then get discarded and such a process is repeated by reusing the
existing buffers, which simulates what happens in a GPU database."

Per round:

1. ``preprocess_r`` — READ table R; WRITE scratch_R (hash tables,
   histograms, partition buffers: the "many intermediate buffers");
   WRITE intermediate I_R; discard scratch_R,
2. ``preprocess_s`` — same for table S,
3. ``join`` — READ I_R and I_S, WRITE the result buffer,
4. discard I_R, I_S and the result (all dead until overwritten next
   round).

Without discard, every intermediate is swapped out under pressure and
swapped back in just to be overwritten — the RMTs behind the paper's
headline "4.17x speedup by eliminating 85.8 % of memory transfers" at
200 % oversubscription.  The result buffer's discard and the
intermediates are prefetch-paired (prefaulted before each overwrite, the
§4.2 best practice) and may go lazy; the scratch buffers are populated
inside their kernels with no pairing prefetch, so their discards stay
eager even in the UvmDiscardLazy system — why lazy "introduces no more
than 4 % overhead ... because in this case not all UvmDiscard calls can
be replaced" (§7.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import ConfigurationError
from repro.gpu.access import SequentialPattern, StridedPattern
from repro.harness.results import ExperimentResult
from repro.harness.runner import ratio_label, run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.interconnect.link import Link
from repro.units import GB


@dataclass
class HashJoinConfig:
    """Hash-join parameters, sized to reproduce Tables 7/8."""

    #: Each input table ("<100 %" traffic = both tables once = 2.98 GB).
    table_bytes: int = int(1.49 * GB)
    #: Each preprocessing intermediate handed to the join (partitions).
    intermediate_bytes: int = int(0.6 * GB)
    #: Each preprocessing kernel's scratch (hash tables, histograms) —
    #: dead as soon as its kernel finishes.
    scratch_bytes: int = int(1.6 * GB)
    #: Joined output.
    result_bytes: int = int(3.2 * GB)
    #: Join rounds re-using the same buffers.
    rounds: int = 3
    #: Sustained kernel throughput over touched bytes.
    kernel_throughput: float = 250 * GB
    #: Fault waves per kernel launch.
    waves: int = 12

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("rounds must be >= 1")

    @property
    def app_bytes(self) -> int:
        return (
            2 * self.table_bytes
            + 2 * self.intermediate_bytes
            + 2 * self.scratch_bytes
            + self.result_bytes
        )

    def scaled(self, factor: float) -> "HashJoinConfig":
        return HashJoinConfig(
            table_bytes=int(self.table_bytes * factor),
            intermediate_bytes=int(self.intermediate_bytes * factor),
            scratch_bytes=int(self.scratch_bytes * factor),
            result_bytes=int(self.result_bytes * factor),
            rounds=self.rounds,
            kernel_throughput=self.kernel_throughput,
            waves=self.waves,
        )


class HashJoinWorkload:
    """Runs the hash-join experiment for one evaluated system."""

    def __init__(self, config: Optional[HashJoinConfig] = None) -> None:
        self.config = config or HashJoinConfig()

    def setup_program(self) -> Callable[[CudaRuntime], Generator]:
        """The system-independent setup prefix: allocate all seven
        buffers and populate the two input tables on the host.  CPU-only,
        so the runtime is quiescent (and snapshottable) afterwards."""
        cfg = self.config

        def setup(cuda: CudaRuntime) -> Generator:
            buffers = {
                "table_r": cuda.malloc_managed(cfg.table_bytes, "table_r"),
                "table_s": cuda.malloc_managed(cfg.table_bytes, "table_s"),
                "inter_r": cuda.malloc_managed(cfg.intermediate_bytes, "inter_r"),
                "inter_s": cuda.malloc_managed(cfg.intermediate_bytes, "inter_s"),
                "scratch_r": cuda.malloc_managed(cfg.scratch_bytes, "scratch_r"),
                "scratch_s": cuda.malloc_managed(cfg.scratch_bytes, "scratch_s"),
                "join_result": cuda.malloc_managed(cfg.result_bytes, "join_result"),
            }
            yield from cuda.host_write(buffers["table_r"])
            yield from cuda.host_write(buffers["table_s"])
            cuda.session.update(buffers)

        return setup

    def body_program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The measured body for ``system``, resuming from a completed
        :meth:`setup_program` (possibly in a forked runtime)."""
        cfg = self.config
        policy = DiscardPolicy(system)

        def body(cuda: CudaRuntime) -> Generator:
            table_r = cuda.session["table_r"]
            table_s = cuda.session["table_s"]
            inter_r = cuda.session["inter_r"]
            inter_s = cuda.session["inter_s"]
            scratch_r = cuda.session["scratch_r"]
            scratch_s = cuda.session["scratch_s"]
            result = cuda.session["join_result"]
            cuda.begin_measurement()  # §7.1: exclude input preprocessing
            fits = cuda.driver.gpu_free_bytes(cuda.gpu.name) >= cfg.app_bytes
            preprocess_time = (
                cfg.table_bytes + cfg.scratch_bytes + cfg.intermediate_bytes
            ) / cfg.kernel_throughput
            join_time = (
                2 * cfg.intermediate_bytes + cfg.result_bytes
            ) / cfg.kernel_throughput
            for round_index in range(cfg.rounds):
                if fits:
                    cuda.prefetch_async(table_r)
                    cuda.prefetch_async(inter_r)
                cuda.launch(
                    KernelSpec(
                        f"preprocess_r_{round_index}",
                        [
                            BufferAccess(table_r, AccessMode.READ),
                            BufferAccess(scratch_r, AccessMode.WRITE),
                            BufferAccess(inter_r, AccessMode.WRITE),
                        ],
                        duration=preprocess_time,
                        waves=cfg.waves,
                    )
                )
                scratch_mode = policy.mode_for(paired_with_prefetch=False)
                if scratch_mode is not None:
                    cuda.discard_async(scratch_r, mode=scratch_mode)
                if fits:
                    cuda.prefetch_async(table_s)
                    cuda.prefetch_async(inter_s)
                cuda.launch(
                    KernelSpec(
                        f"preprocess_s_{round_index}",
                        [
                            BufferAccess(table_s, AccessMode.READ),
                            BufferAccess(scratch_s, AccessMode.WRITE),
                            BufferAccess(inter_s, AccessMode.WRITE),
                        ],
                        duration=preprocess_time,
                        waves=cfg.waves,
                    )
                )
                if scratch_mode is not None:
                    cuda.discard_async(scratch_s, mode=scratch_mode)
                if fits:
                    cuda.prefetch_async(result)  # prefault before overwrite
                cuda.launch(
                    KernelSpec(
                        f"join_{round_index}",
                        [
                            BufferAccess(
                                inter_r, AccessMode.READ, pattern=StridedPattern()
                            ),
                            BufferAccess(
                                inter_s, AccessMode.READ, pattern=StridedPattern()
                            ),
                            BufferAccess(
                                result, AccessMode.WRITE, pattern=SequentialPattern()
                            ),
                        ],
                        duration=join_time,
                        waves=cfg.waves,
                    )
                )
                # Intermediates are dead after the join and are prefetched
                # (prefaulted) before being overwritten next round: lazy-
                # eligible.  The result is consumed in place and never
                # prefetched: it must stay eager (§7.4).
                inter_mode = policy.mode_for(paired_with_prefetch=fits)
                result_mode = policy.mode_for(paired_with_prefetch=fits)
                if inter_mode is not None:
                    cuda.discard_async(inter_r, mode=inter_mode)
                    cuda.discard_async(inter_s, mode=inter_mode)
                if result_mode is not None:
                    cuda.discard_async(result, mode=result_mode)
            yield from cuda.synchronize()

        return body

    def program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The host program (setup prefix + measured body)."""
        setup = self.setup_program()
        body = self.body_program(system)

        def program(cuda: CudaRuntime) -> Generator:
            yield from setup(cuda)
            yield from body(cuda)

        return program

    def run(
        self,
        system: System,
        ratio: float,
        gpu: GpuSpec,
        link: Link,
        driver_config: Optional[UvmDriverConfig] = None,
    ) -> ExperimentResult:
        """Run one Table 7/8 cell."""
        return run_uvm_experiment(
            self.program(system),
            system.value,
            ratio_label(ratio),
            self.config.app_bytes,
            ratio,
            gpu,
            link,
            driver_config=driver_config,
        )
