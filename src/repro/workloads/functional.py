"""Functional-mode workloads: kernels that really compute.

The benchmark workloads (:mod:`~repro.workloads.radix_sort`,
:mod:`~repro.workloads.hash_join`) model memory behaviour only — their
kernels are declared access patterns.  The functions here are the same
algorithms in *functional* simulation: managed buffers carry NumPy
arrays, kernel bodies compute real results at completion, and the memory
system still simulates every fault, migration and discard.  The tests
verify both the numerics (the sort sorts, the join joins) and that the
discard semantics never corrupted a value the program was entitled to.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.access import AccessMode
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.gpu.access import IrregularPattern, StridedPattern

#: Bits consumed per radix pass.
RADIX_BITS = 8


def functional_radix_sort(
    cuda: CudaRuntime,
    keys: np.ndarray,
    discard: Optional[str] = "eager",
) -> Generator:
    """LSD radix sort of ``keys`` (uint32) on the simulated GPU.

    Ping-pongs between the input buffer and a temporary, discarding the
    stale side after each pass exactly as §7.3 describes.  Returns the
    sorted array (also left in the input buffer's backing array).
    """
    if keys.dtype != np.uint32:
        raise TypeError(f"radix sort expects uint32 keys, got {keys.dtype}")
    work = keys.copy()
    array_buf = cuda.malloc_managed(work.nbytes, "keys", array=work)
    temp_arr = np.zeros_like(work)
    temp_buf = cuda.malloc_managed(temp_arr.nbytes, "temp", array=temp_arr)
    yield from cuda.host_write(array_buf)
    cuda.prefetch_async(array_buf)
    cuda.prefetch_async(temp_buf)

    passes = 32 // RADIX_BITS
    source, target = array_buf, temp_buf
    for digit in range(passes):
        shift = digit * RADIX_BITS

        def body(src=source, dst=target, shift=shift):
            order = np.argsort(
                (src.array >> np.uint32(shift)) & np.uint32((1 << RADIX_BITS) - 1),
                kind="stable",
            )
            dst.array[:] = src.array[order]

        cuda.launch(
            KernelSpec(
                f"radix_pass_{digit}",
                [
                    BufferAccess(source, AccessMode.READ),
                    BufferAccess(target, AccessMode.WRITE),
                ],
                flops=float(work.size * 8),
                fn=body,
            )
        )
        if discard is not None:
            # The source side is dead until the next pass overwrites it.
            cuda.discard_async(source, mode=discard)
            cuda.prefetch_async(source)
        source, target = target, source
    yield from cuda.synchronize()
    yield from cuda.host_read(source)
    yield from cuda.synchronize()
    return source.array.copy()


def functional_hash_join(
    cuda: CudaRuntime,
    left_keys: np.ndarray,
    left_values: np.ndarray,
    right_keys: np.ndarray,
    right_values: np.ndarray,
    discard: Optional[str] = "eager",
) -> Generator:
    """Inner hash-join of two (key, value) tables on the simulated GPU.

    Build a hash table from the left table (the scratch the paper's §7.4
    preprocessing fills and discards), probe with the right table, and
    return matched ``(key, left_value, right_value)`` arrays sorted by
    key for determinism.
    """
    left_k = cuda.malloc_managed(left_keys.nbytes, "left_keys", array=left_keys)
    left_v = cuda.malloc_managed(left_values.nbytes, "left_vals", array=left_values)
    right_k = cuda.malloc_managed(right_keys.nbytes, "right_keys", array=right_keys)
    right_v = cuda.malloc_managed(right_values.nbytes, "right_vals", array=right_values)
    for buffer in (left_k, left_v, right_k, right_v):
        yield from cuda.host_write(buffer)

    state = {}

    def build():
        state["table"] = dict(zip(left_k.array.tolist(), left_v.array.tolist()))

    # The build side's hash table is modelled by a scratch buffer sized
    # like the left table (the discardable intermediate).
    scratch = cuda.malloc_managed(
        max(left_keys.nbytes, 4), "hash_scratch"
    )
    cuda.prefetch_async(left_k)
    cuda.prefetch_async(left_v)
    cuda.launch(
        KernelSpec(
            "build_hash_table",
            [
                BufferAccess(left_k, AccessMode.READ),
                BufferAccess(left_v, AccessMode.READ),
                BufferAccess(scratch, AccessMode.WRITE),
            ],
            flops=float(left_keys.size * 16),
            fn=build,
        )
    )

    def probe():
        table = state["table"]
        matches = [
            (int(k), table[int(k)], int(v))
            for k, v in zip(right_k.array.tolist(), right_v.array.tolist())
            if int(k) in table
        ]
        matches.sort()
        state["result"] = matches

    cuda.prefetch_async(right_k)
    cuda.prefetch_async(right_v)
    cuda.launch(
        KernelSpec(
            "probe_hash_table",
            [
                BufferAccess(right_k, AccessMode.READ),
                BufferAccess(right_v, AccessMode.READ),
                BufferAccess(scratch, AccessMode.READWRITE),
            ],
            flops=float(right_keys.size * 16),
            fn=probe,
        )
    )
    if discard is not None:
        # §7.4: the hash table is dead once the probe finished.
        cuda.discard_async(scratch, mode=discard)
    yield from cuda.synchronize()
    result = state["result"]
    keys = np.array([m[0] for m in result], dtype=left_keys.dtype)
    lvals = np.array([m[1] for m in result], dtype=left_values.dtype)
    rvals = np.array([m[2] for m in result], dtype=right_values.dtype)
    return keys, lvals, rvals

def functional_bfs(
    cuda: CudaRuntime,
    indptr: np.ndarray,
    indices: np.ndarray,
    source: int = 0,
    discard: Optional[str] = "eager",
) -> Generator:
    """Level-synchronous BFS over a CSR graph on the simulated GPU.

    Frontiers ping-pong between two buffers; each consumed frontier is
    discarded and (because the buffer is the write target two levels
    later) prefetched back — the paired shape the BFS benchmark models.
    Returns the per-node level array (-1 for unreachable nodes).
    """
    num_nodes = int(indptr.size) - 1
    if num_nodes < 1:
        raise ValueError("indptr must describe at least one node")
    if not 0 <= source < num_nodes:
        raise ValueError(f"source {source} out of range for {num_nodes} nodes")
    indptr_arr = np.ascontiguousarray(indptr, dtype=np.int64)
    indices_arr = np.ascontiguousarray(indices, dtype=np.int64)
    levels = np.full(num_nodes, -1, dtype=np.int32)
    levels[source] = 0
    front_a = np.zeros(num_nodes, dtype=np.int64)
    front_a[0] = source
    front_b = np.zeros(num_nodes, dtype=np.int64)

    edges_buf = cuda.malloc_managed(
        max(indices_arr.nbytes, 4), "bfs_edges", array=indices_arr
    )
    indptr_buf = cuda.malloc_managed(
        max(indptr_arr.nbytes, 4), "bfs_indptr", array=indptr_arr
    )
    levels_buf = cuda.malloc_managed(
        max(levels.nbytes, 4), "bfs_levels", array=levels
    )
    fronts = [
        cuda.malloc_managed(max(front_a.nbytes, 4), "bfs_frontier_a", array=front_a),
        cuda.malloc_managed(max(front_b.nbytes, 4), "bfs_frontier_b", array=front_b),
    ]
    for buffer in (edges_buf, indptr_buf, levels_buf, fronts[0]):
        yield from cuda.host_write(buffer)

    state = {"frontier": np.array([source], dtype=np.int64)}
    level = 0
    while state["frontier"].size:
        cur = fronts[level % 2]
        nxt = fronts[(level + 1) % 2]

        def expand(lv=level, nxt=nxt):
            frontier = state["frontier"]
            chunks = [
                indices_arr[indptr_arr[n] : indptr_arr[n + 1]]
                for n in frontier.tolist()
            ]
            neighbors = (
                np.unique(np.concatenate(chunks))
                if chunks
                else np.empty(0, dtype=np.int64)
            )
            fresh = neighbors[levels_buf.array[neighbors] == -1]
            levels_buf.array[fresh] = lv + 1
            nxt.array[:] = 0
            nxt.array[: fresh.size] = fresh
            state["frontier"] = fresh

        cuda.launch(
            KernelSpec(
                f"bfs_level_{level}",
                [
                    BufferAccess(
                        edges_buf,
                        AccessMode.READ,
                        pattern=IrregularPattern(seed=level),
                    ),
                    BufferAccess(indptr_buf, AccessMode.READ),
                    BufferAccess(cur, AccessMode.READ),
                    BufferAccess(nxt, AccessMode.WRITE),
                    BufferAccess(
                        levels_buf, AccessMode.READWRITE, pattern=StridedPattern()
                    ),
                ],
                flops=float(num_nodes),
                fn=expand,
            )
        )
        if discard is not None:
            # The consumed frontier is dead; it is the write target two
            # levels from now, so prefetch it back (the §5.2 pairing).
            cuda.discard_async(cur, mode=discard)
            cuda.prefetch_async(cur)
        yield from cuda.synchronize()  # the host loop reads the frontier
        level += 1
    yield from cuda.host_read(levels_buf)
    yield from cuda.synchronize()
    return levels_buf.array.copy()


def functional_kmeans(
    cuda: CudaRuntime,
    points: np.ndarray,
    centroids: np.ndarray,
    iterations: int = 3,
    discard: Optional[str] = "eager",
) -> Generator:
    """Lloyd's k-means on the simulated GPU.

    Each iteration assigns points to their nearest centroid (ties break
    to the lowest index) and recomputes centroids from partial sums.
    The partial-sum scratch and the assignment vector are discarded per
    iteration and prefetched back before reuse.  Returns the final
    ``(centroids, assignments)`` pair.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    cent = np.ascontiguousarray(centroids, dtype=np.float64).copy()
    if pts.ndim != 2 or cent.ndim != 2 or pts.shape[1] != cent.shape[1]:
        raise ValueError("points and centroids must be 2-D with equal dims")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    num_clusters = cent.shape[0]
    assign = np.zeros(pts.shape[0], dtype=np.int64)
    partial = np.zeros((num_clusters, pts.shape[1] + 1), dtype=np.float64)

    pts_buf = cuda.malloc_managed(max(pts.nbytes, 4), "kmeans_points", array=pts)
    cent_buf = cuda.malloc_managed(
        max(cent.nbytes, 4), "kmeans_centroids", array=cent
    )
    assign_buf = cuda.malloc_managed(
        max(assign.nbytes, 4), "kmeans_assign", array=assign
    )
    partial_buf = cuda.malloc_managed(
        max(partial.nbytes, 4), "kmeans_partial", array=partial
    )
    yield from cuda.host_write(pts_buf)
    yield from cuda.host_write(cent_buf)

    for iteration in range(iterations):
        cuda.prefetch_async(partial_buf)

        def assign_fn():
            dist2 = ((pts[:, None, :] - cent_buf.array[None, :, :]) ** 2).sum(
                axis=2
            )
            owners = np.argmin(dist2, axis=1)
            assign_buf.array[:] = owners
            sums = partial_buf.array
            sums[:] = 0.0
            np.add.at(sums[:, :-1], owners, pts)
            np.add.at(sums[:, -1], owners, 1.0)

        cuda.launch(
            KernelSpec(
                f"kmeans_assign_{iteration}",
                [
                    BufferAccess(
                        pts_buf,
                        AccessMode.READ,
                        pattern=IrregularPattern(seed=iteration),
                    ),
                    BufferAccess(cent_buf, AccessMode.READ),
                    BufferAccess(assign_buf, AccessMode.WRITE),
                    BufferAccess(partial_buf, AccessMode.WRITE),
                ],
                flops=float(pts.size * num_clusters),
                fn=assign_fn,
            )
        )

        def update_fn():
            sums = partial_buf.array
            counts = sums[:, -1]
            mask = counts > 0
            updated = cent_buf.array.copy()
            updated[mask] = sums[mask, :-1] / counts[mask, None]
            cent_buf.array[:] = updated

        cuda.launch(
            KernelSpec(
                f"kmeans_update_{iteration}",
                [
                    BufferAccess(partial_buf, AccessMode.READ),
                    BufferAccess(cent_buf, AccessMode.READWRITE),
                ],
                flops=float(partial.size),
                fn=update_fn,
            )
        )
        if discard is not None:
            # Partial sums die with the update kernel every iteration;
            # assignments only once they stop being the output.
            cuda.discard_async(partial_buf, mode=discard)
            if iteration + 1 < iterations:
                cuda.prefetch_async(partial_buf)
                cuda.discard_async(assign_buf, mode=discard)
                cuda.prefetch_async(assign_buf)
    yield from cuda.synchronize()
    yield from cuda.host_read(cent_buf)
    yield from cuda.host_read(assign_buf)
    yield from cuda.synchronize()
    return cent_buf.array.copy(), assign_buf.array.copy()


def functional_knn(
    cuda: CudaRuntime,
    refs: np.ndarray,
    queries: np.ndarray,
    k: int = 4,
    batches: int = 2,
    discard: Optional[str] = "eager",
) -> Generator:
    """Batched exact k-nearest-neighbors on the simulated GPU.

    Queries stream through in windows; each window's distance scratch is
    discarded after selection and prefetched back for the next batch,
    while the consumed query window is discarded without pairing.
    Returns the ``(num_queries, k)`` neighbor-index array (stable order:
    ties break to the lower reference index).
    """
    refs_arr = np.ascontiguousarray(refs, dtype=np.float64)
    query_arr = np.ascontiguousarray(queries, dtype=np.float64)
    if refs_arr.ndim != 2 or query_arr.ndim != 2:
        raise ValueError("refs and queries must be 2-D")
    if refs_arr.shape[1] != query_arr.shape[1]:
        raise ValueError("refs and queries must have equal dims")
    if not 1 <= k <= refs_arr.shape[0]:
        raise ValueError(f"k={k} out of range for {refs_arr.shape[0]} refs")
    num_queries = query_arr.shape[0]
    if batches < 1 or num_queries % batches:
        raise ValueError(
            f"{num_queries} queries do not split into {batches} equal batches"
        )
    per_batch = num_queries // batches
    scratch = np.zeros((per_batch, refs_arr.shape[0]), dtype=np.float64)
    result = np.zeros((num_queries, k), dtype=np.int64)

    refs_buf = cuda.malloc_managed(max(refs_arr.nbytes, 4), "knn_refs", array=refs_arr)
    query_buf = cuda.malloc_managed(
        max(query_arr.nbytes, 4), "knn_queries", array=query_arr
    )
    scratch_buf = cuda.malloc_managed(
        max(scratch.nbytes, 4), "knn_scratch", array=scratch
    )
    result_buf = cuda.malloc_managed(
        max(result.nbytes, 4), "knn_result", array=result
    )
    yield from cuda.host_write(refs_buf)
    yield from cuda.host_write(query_buf)

    window_bytes = per_batch * query_arr.shape[1] * 8
    result_window = per_batch * k * 8
    for b in range(batches):
        q_rng = query_buf.subrange(b * window_bytes, window_bytes)
        cuda.prefetch_async(scratch_buf)

        def distances(b=b):
            window = query_arr[b * per_batch : (b + 1) * per_batch]
            scratch_buf.array[:] = (
                (window[:, None, :] - refs_arr[None, :, :]) ** 2
            ).sum(axis=2)

        cuda.launch(
            KernelSpec(
                f"knn_distance_{b}",
                [
                    BufferAccess(
                        refs_buf,
                        AccessMode.READ,
                        pattern=IrregularPattern(seed=b),
                    ),
                    BufferAccess(query_buf, AccessMode.READ, q_rng),
                    BufferAccess(scratch_buf, AccessMode.WRITE),
                ],
                flops=float(per_batch * refs_arr.size),
                fn=distances,
            )
        )

        def select(b=b):
            order = np.argsort(scratch_buf.array, axis=1, kind="stable")
            result_buf.array[b * per_batch : (b + 1) * per_batch] = order[:, :k]

        cuda.launch(
            KernelSpec(
                f"knn_select_{b}",
                [
                    BufferAccess(scratch_buf, AccessMode.READ),
                    BufferAccess(
                        result_buf,
                        AccessMode.WRITE,
                        result_buf.subrange(b * result_window, result_window),
                    ),
                ],
                flops=float(scratch.size),
                fn=select,
            )
        )
        if discard is not None:
            # The query window is never revisited (unpaired); the
            # scratch is — prefetch it back for the next batch.
            cuda.discard_async(query_buf, rng=q_rng, mode=discard)
            cuda.discard_async(scratch_buf, mode=discard)
            if b + 1 < batches:
                cuda.prefetch_async(scratch_buf)
    yield from cuda.synchronize()
    yield from cuda.host_read(result_buf)
    yield from cuda.synchronize()
    return result_buf.array.copy()


def functional_stencil(
    cuda: CudaRuntime,
    grid: np.ndarray,
    iterations: int = 3,
    discard: Optional[str] = "eager",
) -> Generator:
    """Jacobi 5-point stencil over ping-pong grids on the simulated GPU.

    Each sweep averages a cell with its four neighbors (boundary cells
    copy through); the consumed source grid is discarded and prefetched
    back as the next sweep's write target.  Returns the final grid.
    """
    start = np.ascontiguousarray(grid, dtype=np.float64)
    if start.ndim != 2:
        raise ValueError("grid must be 2-D")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    grid_a = start.copy()
    grid_b = np.zeros_like(start)
    grids = [
        cuda.malloc_managed(max(grid_a.nbytes, 4), "stencil_grid_a", array=grid_a),
        cuda.malloc_managed(max(grid_b.nbytes, 4), "stencil_grid_b", array=grid_b),
    ]
    yield from cuda.host_write(grids[0])

    for i in range(iterations):
        src = grids[i % 2]
        dst = grids[(i + 1) % 2]
        cuda.prefetch_async(dst)

        def sweep(src=src, dst=dst):
            s = src.array
            d = dst.array
            d[:] = s
            d[1:-1, 1:-1] = (
                s[1:-1, 1:-1]
                + s[:-2, 1:-1]
                + s[2:, 1:-1]
                + s[1:-1, :-2]
                + s[1:-1, 2:]
            ) / 5.0

        cuda.launch(
            KernelSpec(
                f"stencil_sweep_{i}",
                [
                    BufferAccess(src, AccessMode.READ, pattern=StridedPattern()),
                    BufferAccess(dst, AccessMode.WRITE),
                ],
                flops=float(start.size * 5),
                fn=sweep,
            )
        )
        if discard is not None:
            # The consumed grid is iteration i+1's write target.
            cuda.discard_async(src, mode=discard)
            if i + 1 < iterations:
                cuda.prefetch_async(src)
    yield from cuda.synchronize()
    final = grids[iterations % 2]
    yield from cuda.host_read(final)
    yield from cuda.synchronize()
    return final.array.copy()


def functional_reduction(
    cuda: CudaRuntime,
    values: np.ndarray,
    fanin: int = 8,
    discard: Optional[str] = "eager",
) -> Generator:
    """Tree-sum of ``values`` with the given fan-in on the simulated GPU.

    Levels ping-pong between the input buffer and a scratch buffer;
    every consumed source span is discarded, and all but the last are
    prefetched back (the span is level *k+1*'s write target).  Returns
    the scalar sum as a 1-element array.
    """
    vals = np.ascontiguousarray(values, dtype=np.float64).ravel()
    if vals.size < 1:
        raise ValueError("values must be non-empty")
    if fanin < 2:
        raise ValueError("fanin must be >= 2")
    lengths = [vals.size]
    while lengths[-1] > 1:
        lengths.append(-(-lengths[-1] // fanin))
    work = vals.copy()
    scratch = np.zeros(lengths[1] if len(lengths) > 1 else 1, dtype=np.float64)
    buffers = [
        cuda.malloc_managed(max(work.nbytes, 4), "reduce_values", array=work),
        cuda.malloc_managed(max(scratch.nbytes, 4), "reduce_scratch", array=scratch),
    ]
    yield from cuda.host_write(buffers[0])

    num_levels = len(lengths) - 1
    for level in range(num_levels):
        src = buffers[level % 2]
        dst = buffers[(level + 1) % 2]
        src_len = lengths[level]
        dst_len = lengths[level + 1]
        src_rng = src.subrange(0, src_len * 8)
        dst_rng = dst.subrange(0, dst_len * 8)
        cuda.prefetch_async(dst, rng=dst_rng)

        def reduce_level(src=src, dst=dst, src_len=src_len, dst_len=dst_len):
            data = src.array[:src_len]
            pad = dst_len * fanin - src_len
            if pad:
                data = np.concatenate([data, np.zeros(pad, dtype=np.float64)])
            dst.array[:dst_len] = data.reshape(dst_len, fanin).sum(axis=1)

        cuda.launch(
            KernelSpec(
                f"reduce_level_{level}",
                [
                    BufferAccess(src, AccessMode.READ, src_rng),
                    BufferAccess(dst, AccessMode.WRITE, dst_rng),
                ],
                flops=float(src_len),
                fn=reduce_level,
            )
        )
        if discard is not None:
            # The consumed span is level k+1's write target (except at
            # the last level, which leaves the sum behind).
            cuda.discard_async(src, rng=src_rng, mode=discard)
            if level + 1 < num_levels:
                cuda.prefetch_async(src, rng=src_rng)
    yield from cuda.synchronize()
    final = buffers[num_levels % 2]
    yield from cuda.host_read(final, rng=final.subrange(0, 8))
    yield from cuda.synchronize()
    return final.array[:1].copy()
