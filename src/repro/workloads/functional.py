"""Functional-mode workloads: kernels that really compute.

The benchmark workloads (:mod:`~repro.workloads.radix_sort`,
:mod:`~repro.workloads.hash_join`) model memory behaviour only — their
kernels are declared access patterns.  The functions here are the same
algorithms in *functional* simulation: managed buffers carry NumPy
arrays, kernel bodies compute real results at completion, and the memory
system still simulates every fault, migration and discard.  The tests
verify both the numerics (the sort sorts, the join joins) and that the
discard semantics never corrupted a value the program was entitled to.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.access import AccessMode
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime

#: Bits consumed per radix pass.
RADIX_BITS = 8


def functional_radix_sort(
    cuda: CudaRuntime,
    keys: np.ndarray,
    discard: Optional[str] = "eager",
) -> Generator:
    """LSD radix sort of ``keys`` (uint32) on the simulated GPU.

    Ping-pongs between the input buffer and a temporary, discarding the
    stale side after each pass exactly as §7.3 describes.  Returns the
    sorted array (also left in the input buffer's backing array).
    """
    if keys.dtype != np.uint32:
        raise TypeError(f"radix sort expects uint32 keys, got {keys.dtype}")
    work = keys.copy()
    array_buf = cuda.malloc_managed(work.nbytes, "keys", array=work)
    temp_arr = np.zeros_like(work)
    temp_buf = cuda.malloc_managed(temp_arr.nbytes, "temp", array=temp_arr)
    yield from cuda.host_write(array_buf)
    cuda.prefetch_async(array_buf)
    cuda.prefetch_async(temp_buf)

    passes = 32 // RADIX_BITS
    source, target = array_buf, temp_buf
    for digit in range(passes):
        shift = digit * RADIX_BITS

        def body(src=source, dst=target, shift=shift):
            order = np.argsort(
                (src.array >> np.uint32(shift)) & np.uint32((1 << RADIX_BITS) - 1),
                kind="stable",
            )
            dst.array[:] = src.array[order]

        cuda.launch(
            KernelSpec(
                f"radix_pass_{digit}",
                [
                    BufferAccess(source, AccessMode.READ),
                    BufferAccess(target, AccessMode.WRITE),
                ],
                flops=float(work.size * 8),
                fn=body,
            )
        )
        if discard is not None:
            # The source side is dead until the next pass overwrites it.
            cuda.discard_async(source, mode=discard)
            cuda.prefetch_async(source)
        source, target = target, source
    yield from cuda.synchronize()
    yield from cuda.host_read(source)
    yield from cuda.synchronize()
    return source.array.copy()


def functional_hash_join(
    cuda: CudaRuntime,
    left_keys: np.ndarray,
    left_values: np.ndarray,
    right_keys: np.ndarray,
    right_values: np.ndarray,
    discard: Optional[str] = "eager",
) -> Generator:
    """Inner hash-join of two (key, value) tables on the simulated GPU.

    Build a hash table from the left table (the scratch the paper's §7.4
    preprocessing fills and discards), probe with the right table, and
    return matched ``(key, left_value, right_value)`` arrays sorted by
    key for determinism.
    """
    left_k = cuda.malloc_managed(left_keys.nbytes, "left_keys", array=left_keys)
    left_v = cuda.malloc_managed(left_values.nbytes, "left_vals", array=left_values)
    right_k = cuda.malloc_managed(right_keys.nbytes, "right_keys", array=right_keys)
    right_v = cuda.malloc_managed(right_values.nbytes, "right_vals", array=right_values)
    for buffer in (left_k, left_v, right_k, right_v):
        yield from cuda.host_write(buffer)

    state = {}

    def build():
        state["table"] = dict(zip(left_k.array.tolist(), left_v.array.tolist()))

    # The build side's hash table is modelled by a scratch buffer sized
    # like the left table (the discardable intermediate).
    scratch = cuda.malloc_managed(
        max(left_keys.nbytes, 4), "hash_scratch"
    )
    cuda.prefetch_async(left_k)
    cuda.prefetch_async(left_v)
    cuda.launch(
        KernelSpec(
            "build_hash_table",
            [
                BufferAccess(left_k, AccessMode.READ),
                BufferAccess(left_v, AccessMode.READ),
                BufferAccess(scratch, AccessMode.WRITE),
            ],
            flops=float(left_keys.size * 16),
            fn=build,
        )
    )

    def probe():
        table = state["table"]
        matches = [
            (int(k), table[int(k)], int(v))
            for k, v in zip(right_k.array.tolist(), right_v.array.tolist())
            if int(k) in table
        ]
        matches.sort()
        state["result"] = matches

    cuda.prefetch_async(right_k)
    cuda.prefetch_async(right_v)
    cuda.launch(
        KernelSpec(
            "probe_hash_table",
            [
                BufferAccess(right_k, AccessMode.READ),
                BufferAccess(right_v, AccessMode.READ),
                BufferAccess(scratch, AccessMode.READWRITE),
            ],
            flops=float(right_keys.size * 16),
            fn=probe,
        )
    )
    if discard is not None:
        # §7.4: the hash table is dead once the probe finished.
        cuda.discard_async(scratch, mode=discard)
    yield from cuda.synchronize()
    result = state["result"]
    keys = np.array([m[0] for m in result], dtype=left_keys.dtype)
    lvals = np.array([m[1] for m in result], dtype=left_values.dtype)
    rvals = np.array([m[2] for m in result], dtype=right_values.dtype)
    return keys, lvals, rvals
