"""kNN — batched k-nearest-neighbor search (UVMBench's ML family).

Queries stream through in windows (the FIR shape) while every batch
re-gathers the whole reference set in a data-dependent order (the
random-access shape) — the combination UVMBench's kNN stresses.  Two
discard sites with different pairings:

- the consumed query window is dead forever once its batch finished —
  unpaired, stays eager in every discard system (the §7.2 FIR pattern);
- the per-batch distance scratch is consumed by the selection kernel,
  discarded, and prefetched back for the next batch — the §5.2
  prefetch-paired site that goes lazy under UvmDiscardLazy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import ConfigurationError
from repro.gpu.access import IrregularPattern, SequentialPattern
from repro.harness.results import ExperimentResult
from repro.harness.runner import ratio_label, run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.interconnect.link import Link
from repro.units import BIG_PAGE, GB, align_up


@dataclass
class KnnConfig:
    """kNN workload parameters."""

    #: Reference points; each is ``dims`` float32 features.
    num_refs: int = 1 << 26
    #: Query points, processed in ``batches`` streaming windows.
    num_queries: int = 1 << 23
    #: Feature dimensions per point.
    dims: int = 8
    #: Number of query windows.
    batches: int = 8
    #: Sustained GPU throughput over the bytes a kernel touches.
    kernel_throughput: float = 180 * GB
    #: Fault waves per kernel launch.
    waves: int = 8
    #: Base seed of the per-batch irregular reference gather.
    seed: int = 0x4E4E

    def __post_init__(self) -> None:
        if self.num_refs < 1:
            raise ConfigurationError("num_refs must be >= 1")
        if self.dims < 1:
            raise ConfigurationError("dims must be >= 1")
        if self.batches < 1:
            raise ConfigurationError("batches must be >= 1")
        if self.num_queries < self.batches:
            raise ConfigurationError("need at least one query per batch")

    @property
    def refs_bytes(self) -> int:
        """The reference set, rounded up to whole 2 MiB blocks."""
        return align_up(self.num_refs * self.dims * 4, BIG_PAGE)

    @property
    def batch_bytes(self) -> int:
        """One query window, rounded up to whole 2 MiB blocks."""
        return align_up(
            (self.num_queries // self.batches) * self.dims * 4, BIG_PAGE
        )

    @property
    def query_bytes(self) -> int:
        """The whole query set (``batches`` windows)."""
        return self.batches * self.batch_bytes

    @property
    def scratch_bytes(self) -> int:
        """Per-batch distance scratch consumed by the selection kernel."""
        return self.batch_bytes

    @property
    def result_bytes(self) -> int:
        """The neighbor-index output (uint32 per query)."""
        return align_up(self.num_queries * 4, BIG_PAGE)

    @property
    def app_bytes(self) -> int:
        """GPU footprint: references + queries + scratch + results."""
        return (
            self.refs_bytes
            + self.query_bytes
            + self.scratch_bytes
            + self.result_bytes
        )

    def scaled(self, factor: float) -> "KnnConfig":
        """Shrink the search for fast runs (pair with ``gpu.scaled``)."""
        return KnnConfig(
            num_refs=max(BIG_PAGE // 4, int(self.num_refs * factor)),
            num_queries=max(
                self.batches * (BIG_PAGE // 32),
                int(self.num_queries * factor),
            ),
            dims=self.dims,
            batches=self.batches,
            kernel_throughput=self.kernel_throughput,
            waves=self.waves,
            seed=self.seed,
        )


class KnnWorkload:
    """Runs the kNN experiment for one evaluated system."""

    def __init__(self, config: Optional[KnnConfig] = None) -> None:
        self.config = config or KnnConfig()

    def setup_program(self) -> Callable[[CudaRuntime], Generator]:
        """Allocate the buffers and generate references and queries on
        the host (CPU-only, quiescent at the end)."""
        cfg = self.config

        def setup(cuda: CudaRuntime) -> Generator:
            refs = cuda.malloc_managed(cfg.refs_bytes, "knn_refs")
            queries = cuda.malloc_managed(cfg.query_bytes, "knn_queries")
            scratch = cuda.malloc_managed(cfg.scratch_bytes, "knn_scratch")
            result = cuda.malloc_managed(cfg.result_bytes, "knn_result")
            yield from cuda.host_write(refs)  # generate the reference set
            yield from cuda.host_write(queries)  # generate the queries
            cuda.session["knn_refs"] = refs
            cuda.session["knn_queries"] = queries
            cuda.session["knn_scratch"] = scratch
            cuda.session["knn_result"] = result

        return setup

    def body_program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The measured batched search for ``system``."""
        cfg = self.config
        policy = DiscardPolicy(system)

        def body(cuda: CudaRuntime) -> Generator:
            refs = cuda.session["knn_refs"]
            queries = cuda.session["knn_queries"]
            scratch = cuda.session["knn_scratch"]
            result = cuda.session["knn_result"]
            cuda.begin_measurement()
            compute = cuda.create_stream("compute")
            transfer = cuda.create_stream("transfer")
            batch = cfg.batch_bytes
            result_window = cfg.result_bytes // cfg.batches
            for b in range(cfg.batches):
                q_rng = queries.subrange(b * batch, batch)
                cuda.prefetch_async(queries, rng=q_rng, stream=transfer)
                # The scratch was discarded after the previous batch's
                # selection; prefetching it back keeps the site lazy
                # under UvmDiscardLazy (§5.2).
                prefetched = cuda.prefetch_async(scratch, stream=transfer)
                distance = KernelSpec(
                    f"knn_distance_{b}",
                    [
                        BufferAccess(
                            refs,
                            AccessMode.READ,
                            pattern=IrregularPattern(seed=cfg.seed + b),
                        ),
                        BufferAccess(
                            queries,
                            AccessMode.READ,
                            q_rng,
                            SequentialPattern(),
                        ),
                        BufferAccess(
                            scratch, AccessMode.WRITE, pattern=SequentialPattern()
                        ),
                    ],
                    duration=(cfg.refs_bytes + batch) / cfg.kernel_throughput,
                    waves=cfg.waves,
                )
                compute.wait_for(prefetched)
                cuda.launch(distance, stream=compute)
                out_rng = result.subrange(
                    b * result_window,
                    result_window if b + 1 < cfg.batches else None,
                )
                select = KernelSpec(
                    f"knn_select_{b}",
                    [
                        BufferAccess(
                            scratch, AccessMode.READ, pattern=SequentialPattern()
                        ),
                        BufferAccess(
                            result, AccessMode.WRITE, out_rng, SequentialPattern()
                        ),
                    ],
                    duration=cfg.scratch_bytes / cfg.kernel_throughput,
                    waves=max(1, cfg.waves // 2),
                )
                cuda.launch(select, stream=compute)
                # The consumed query window is never revisited — an
                # unpaired site that stays eager, like FIR's windows.
                mode = policy.mode_for(paired_with_prefetch=False)
                if mode is not None:
                    cuda.discard_async(queries, rng=q_rng, mode=mode, stream=compute)
                # The distance scratch dies with the selection kernel;
                # the next batch prefetches it back (paired site).
                paired = b + 1 < cfg.batches
                mode = policy.mode_for(paired_with_prefetch=paired)
                if mode is not None:
                    cuda.discard_async(scratch, mode=mode, stream=compute)
            yield from cuda.synchronize()

        return body

    def program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The host program for ``system`` (a generator function)."""
        setup = self.setup_program()
        body = self.body_program(system)

        def program(cuda: CudaRuntime) -> Generator:
            yield from setup(cuda)
            yield from body(cuda)

        return program

    def run(
        self,
        system: System,
        ratio: float,
        gpu: GpuSpec,
        link: Link,
        driver_config: Optional[UvmDriverConfig] = None,
    ) -> ExperimentResult:
        """Run one oversubscription cell of the kNN table."""
        return run_uvm_experiment(
            self.program(system),
            system.value,
            ratio_label(ratio),
            self.config.app_bytes,
            ratio,
            gpu,
            link,
            driver_config=driver_config,
        )
