"""VectorAdd — the paper's running example (Listings 1, 2 and 3).

Three variants of ``C = A + B``:

- :func:`explicit_vector_add` — Listing 1: explicit device buffers and
  `cudaMemcpyAsync` marshalling.
- :func:`uvm_vector_add` — Listing 2: managed buffers, optional
  prefetches, fault-driven migration.
- :func:`uvm_vector_add` with ``reuse_with_discard=True`` — Listing 3:
  the output buffer is repurposed by a second kernel after a discard.

All variants are *functional*: the kernels really compute the sums into
NumPy arrays, which the tests compare against ``a + b``.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.access import AccessMode
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.instrument.traffic import TransferDirection


def _vec_kernel(name, out, a, b, flops):
    """A functional vector-add kernel: out = a + b."""

    def body() -> None:
        if out.array is not None and a.array is not None and b.array is not None:
            np.add(a.array, b.array, out=out.array)

    return KernelSpec(
        name,
        [
            BufferAccess(a, AccessMode.READ),
            BufferAccess(b, AccessMode.READ),
            BufferAccess(out, AccessMode.WRITE),
        ],
        flops=flops,
        fn=body,
    )


def explicit_vector_add(cuda: CudaRuntime, n: int) -> Generator:
    """Listing 1: manual buffers, explicit copies.  Yields host time."""
    h_a = np.arange(n, dtype=np.float32)
    h_b = np.full(n, 2.0, dtype=np.float32)
    h_c = np.empty(n, dtype=np.float32)
    nbytes = h_a.nbytes
    d_a = yield from cuda.malloc_device(nbytes, "d_A")
    d_b = yield from cuda.malloc_device(nbytes, "d_B")
    d_c = yield from cuda.malloc_device(nbytes, "d_C")
    cuda.memcpy_async(nbytes, TransferDirection.HOST_TO_DEVICE)
    cuda.memcpy_async(nbytes, TransferDirection.HOST_TO_DEVICE)
    cuda.launch_raw("vectorAdd", duration=n / cuda.gpu.effective_flops)
    cuda.memcpy_async(nbytes, TransferDirection.DEVICE_TO_HOST)
    yield from cuda.synchronize()
    np.add(h_a, h_b, out=h_c)  # the functional result of the copies+kernel
    yield from cuda.free_device(d_a)
    yield from cuda.free_device(d_b)
    yield from cuda.free_device(d_c)
    return h_c


def uvm_vector_add(
    cuda: CudaRuntime,
    n: int,
    prefetch: bool = True,
    reuse_with_discard: Optional[str] = None,
) -> Generator:
    """Listing 2 (and, with ``reuse_with_discard``, Listing 3).

    Args:
        prefetch: issue the optional `cudaMemPrefetchAsync` calls.
        reuse_with_discard: if a discard mode ("eager"/"lazy"), repurpose
            buffer ``A`` after the first kernel as Listing 3 does: discard
            it, prefetch it back, and run a second kernel writing into it.

    Returns the output array (``C``, or the repurposed ``A``).
    """
    a_arr = np.arange(n, dtype=np.float32)
    b_arr = np.full(n, 2.0, dtype=np.float32)
    c_arr = np.zeros(n, dtype=np.float32)
    a = cuda.malloc_managed(a_arr.nbytes, "A", array=a_arr)
    b = cuda.malloc_managed(b_arr.nbytes, "B", array=b_arr)
    c = cuda.malloc_managed(c_arr.nbytes, "C", array=c_arr)
    # Generate input data on the host (CPU first touch, Figure 1 ①).
    yield from cuda.host_write(a)
    yield from cuda.host_write(b)
    if prefetch:
        cuda.prefetch_async(a)
        cuda.prefetch_async(b)
        cuda.prefetch_async(c)  # prefault the output
    cuda.launch(_vec_kernel("vectorAdd", c, a, b, flops=float(n)))
    if reuse_with_discard is not None:
        # Listing 3: A's inputs are dead; repurpose A for a second sum.
        cuda.discard_async(a, mode=reuse_with_discard)
        if prefetch or reuse_with_discard == "lazy":
            # Mandatory for lazy (§5.2); best practice for eager (§4.2).
            cuda.prefetch_async(a)
        cuda.launch(_vec_kernel("vectorAdd2", a, b, c, flops=float(n)))
    if prefetch:
        target = a if reuse_with_discard is not None else c
        cuda.prefetch_async(target, destination="cpu")
    yield from cuda.synchronize()
    out = a if reuse_with_discard is not None else c
    yield from cuda.host_read(out)
    yield from cuda.synchronize()
    return out.array
