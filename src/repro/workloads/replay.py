"""Access-trace replay: run an external memory-access trace as a workload.

This module is the PR 5 Chrome-trace export *in reverse*.  ``repro
trace`` records every host-visible CUDA API call on a dedicated
``program`` track (category ``program``); :func:`chrome_trace_to_replay`
lifts those records into a standalone **replay trace** — a small,
documented JSON/CSV document — and :class:`ReplayWorkload` re-enqueues
the recorded operations against a fresh simulator, reproducing the
original run's migration behavior byte for byte
(``tests/test_replay.py`` pins ``bytes_h2d``/``bytes_d2h`` equality).

Replay trace schema (version 1)
-------------------------------

JSON form::

    {
      "version": 1,
      "meta": {
        "workload": "bfs", "system": "UvmDiscard",
        "link": "gen3", "gpu": "rtx3080ti",
        "scale": 0.03125, "ratio": 2.0,
        "batch_size": null, "app_bytes": 171966464,
        "expected": {"bytes_h2d": ..., "bytes_d2h": ...,
                     "transfer_count": ...}          # optional check
      },
      "buffers": [
        {"name": "bfs_edges", "nbytes": 134217728,
         "spans": [[0, 134217728]]}                  # populated spans
      ],
      "ops": [ {"op": "...", "t": <seconds>, ...}, ... ]
    }

``buffers`` describes the state at the measured body's start: each
buffer is allocated in order and every ``[offset, length]`` span is
``host_write``-populated (CPU-resident), exactly what the recorded
setup phase left behind.  ``ops`` is the measured body.  Op kinds:

===========  =====================================================
``measure``  mark the measured region (``begin_measurement``)
``stream``   create a stream: ``stream``
``malloc``   ``buffer``, ``nbytes`` (mid-body allocation)
``free``     ``buffer``
``host_access``  ``buffer``, ``mode`` (read/write/readwrite),
             ``offset``, ``length`` — synchronous CPU access
``prefetch`` ``id``, ``buffer``, ``dest``, ``offset``, ``length``,
             ``stream`` — async ``cudaMemPrefetchAsync``
``discard``  ``id``, ``buffer``, ``mode`` (eager/lazy), ``offset``,
             ``length``, ``stream`` — async ``UvmDiscardAsync``
``kernel``   ``id``, ``kernel``, ``duration`` (may be null),
             ``flops``, ``waves``, ``device``, ``stream``,
             ``accesses``: list of ``{buffer, mode, offset, length,
             pattern}`` where pattern is ``{"kind": "sequential" |
             "strided"}`` or ``{"kind": "irregular", "passes": P,
             "seed": S}``
``kernel_raw``  ``kernel``, ``duration``, ``stream``
``memcpy``   ``direction`` (h2d/d2h/d2d), ``nbytes``, ``reason``,
             ``device``, ``stream``
``sync``     ``stream`` (null = device-wide synchronize)
``wait``     ``stream``, ``on`` — stream waits for the async op
             whose ``id`` is ``on``
===========  =====================================================

``id`` is the op's record position in the source trace; only async ops
(prefetch/discard/kernel/kernel_raw/memcpy) carry one, and ``wait.on``
must reference one that appeared earlier.  ``t`` (simulated seconds,
optional) must be non-negative and non-decreasing; replay re-derives
all timing, so ``t`` is validated but not used for scheduling.

CSV form
--------

One op per row, columns ``t,op,id,stream,buffer,mode,offset,length,
value,extra``; ``#``-prefixed lines are pragmas or comments::

    #repro-replay-csv v1
    #meta workload=bfs system=UvmDiscard link=gen3 gpu=rtx3080ti ...
    #expect bytes_h2d=807403520 bytes_d2h=773849088 transfer_count=711
    t,op,id,stream,buffer,mode,offset,length,value,extra
    ,buffer,,,bfs_edges,,,134217728,,
    ,span,,,bfs_edges,,0,134217728,,
    0.0,measure,,,,,,,,
    0.0,stream,,compute,,,,,,
    0.0,prefetch,12,transfer,bfs_visited,gpu0,0,4194304,,
    0.0,kernel,15,compute,bfs_level_0,,8,,0.0011,flops=0.0;device=gpu0
    0.0,access,,,bfs_edges,read,0,134217728,irregular:1:3061,
    0.0,wait,,compute,,,,,12,
    1.2,sync,,,,,,,,

Column reuse per row kind: ``buffer`` rows carry ``nbytes`` in the
``length`` column; ``kernel`` rows carry the kernel name in ``buffer``,
waves in ``offset``, duration in ``value`` (empty = derive from flops)
and ``flops=F;device=D`` in ``extra``; ``access`` rows (attached to the
preceding ``kernel`` row) carry the pattern spec in ``value`` —
``sequential``, ``strided``, or ``irregular:<passes>:<seed>``;
``prefetch`` rows carry the destination in ``mode``; ``memcpy`` rows
carry direction in ``mode``, byte count in ``length`` and reason in
``value``; ``wait`` rows carry the target id in ``value``.

Malformed input of either form raises :class:`TraceFormatError` (a
:class:`~repro.errors.ConfigurationError`) naming the offending row.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.access import AccessMode
from repro.errors import ConfigurationError
from repro.gpu.access import IrregularPattern, SequentialPattern, StridedPattern
from repro.instrument.traffic import TransferReason
from repro.interconnect.link import TransferDirection

__all__ = [
    "TraceFormatError",
    "ReplayTrace",
    "ReplayWorkload",
    "chrome_trace_to_replay",
    "replay_trace_to_csv",
    "replay_trace_from_csv",
    "load_replay_trace",
    "per_buffer_transfer_totals",
    "run_replay",
]

SCHEMA_VERSION = 1

#: Op kinds that enqueue asynchronous work and therefore carry an id.
_ASYNC_OPS = frozenset(
    {"prefetch", "discard", "kernel", "kernel_raw", "memcpy"}
)
_OP_KINDS = _ASYNC_OPS | frozenset(
    {"measure", "stream", "malloc", "free", "host_access", "sync", "wait"}
)
_ACCESS_MODES = frozenset(m.value for m in AccessMode)
_DISCARD_MODES = frozenset({"eager", "lazy"})
_DIRECTIONS = frozenset(d.value for d in TransferDirection)
_REASONS = frozenset(r.value for r in TransferReason)
_PATTERN_KINDS = frozenset({"sequential", "strided", "irregular"})

_CSV_COLUMNS = (
    "t",
    "op",
    "id",
    "stream",
    "buffer",
    "mode",
    "offset",
    "length",
    "value",
    "extra",
)
_CSV_MAGIC = "#repro-replay-csv v1"

#: meta keys carried through the CSV ``#meta`` pragma, with their types.
_META_FIELDS = {
    "workload": str,
    "system": str,
    "link": str,
    "gpu": str,
    "scale": float,
    "ratio": float,
    "batch_size": int,
    "app_bytes": int,
    "config": str,
}
_EXPECT_FIELDS = ("bytes_h2d", "bytes_d2h", "transfer_count")


class TraceFormatError(ConfigurationError):
    """A replay trace (JSON or CSV) violates the documented schema."""


def _fail(where: str, problem: str) -> None:
    raise TraceFormatError(f"replay trace: {where}: {problem}")


def _require_int(where: str, value: Any, field: str, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        _fail(where, f"{field} must be an integer, got {value!r}")
    if value < minimum:
        _fail(where, f"{field} must be >= {minimum}, got {value}")
    return value


def _require_str(where: str, value: Any, field: str) -> str:
    if not isinstance(value, str) or not value:
        _fail(where, f"{field} must be a non-empty string, got {value!r}")
    return value


def _check_span(where: str, offset: Any, length: Any, nbytes: int) -> None:
    _require_int(where, offset, "offset")
    _require_int(where, length, "length", minimum=1)
    if offset + length > nbytes:
        _fail(
            where,
            f"span [{offset}, {offset + length}) exceeds the buffer's "
            f"{nbytes} bytes (bad VA)",
        )


def _pattern_from_fields(where: str, fields: Any):
    if not isinstance(fields, dict):
        _fail(where, f"pattern must be an object, got {fields!r}")
    kind = fields.get("kind")
    if kind == "sequential":
        return SequentialPattern()
    if kind == "strided":
        return StridedPattern()
    if kind == "irregular":
        passes = _require_int(where, fields.get("passes", 1), "passes", 1)
        seed = _require_int(where, fields.get("seed", 0), "seed")
        return IrregularPattern(passes=passes, seed=seed)
    _fail(where, f"unknown pattern kind {kind!r}; expected one of "
                 f"{sorted(_PATTERN_KINDS)}")


class ReplayTrace:
    """A parsed, validated replay trace (see the module docstring)."""

    def __init__(self, document: Dict[str, Any]) -> None:
        if not isinstance(document, dict):
            _fail("document", f"expected a JSON object, got {type(document).__name__}")
        version = document.get("version")
        if version != SCHEMA_VERSION:
            _fail("document", f"unsupported version {version!r}; this reader "
                              f"understands version {SCHEMA_VERSION}")
        meta = document.get("meta")
        if not isinstance(meta, dict):
            _fail("meta", "missing or not an object")
        for field in ("system", "gpu", "link"):
            _require_str("meta", meta.get(field), field)
        self.meta: Dict[str, Any] = dict(meta)
        self.expected: Optional[Dict[str, int]] = None
        expected = meta.get("expected")
        if expected is not None:
            if not isinstance(expected, dict):
                _fail("meta.expected", "must be an object")
            self.expected = {
                field: _require_int("meta.expected", expected.get(field), field)
                for field in _EXPECT_FIELDS
            }
        self.buffers: List[Tuple[str, int, List[List[int]]]] = []
        self._validate_buffers(document.get("buffers"))
        self.ops: List[Dict[str, Any]] = []
        self._validate_ops(document.get("ops"))

    # -- validation ----------------------------------------------------

    def _validate_buffers(self, buffers: Any) -> None:
        if not isinstance(buffers, list) or not buffers:
            _fail("buffers", "missing or empty; replay needs at least one buffer")
        seen = set()
        for index, entry in enumerate(buffers):
            where = f"buffers[{index}]"
            if not isinstance(entry, dict):
                _fail(where, "must be an object")
            name = _require_str(where, entry.get("name"), "name")
            if name in seen:
                _fail(where, f"duplicate buffer name {name!r}")
            seen.add(name)
            nbytes = _require_int(where, entry.get("nbytes"), "nbytes", 1)
            spans = entry.get("spans", [])
            if not isinstance(spans, list):
                _fail(where, "spans must be a list of [offset, length] pairs")
            clean_spans: List[List[int]] = []
            previous_end = -1
            for span in spans:
                if not isinstance(span, (list, tuple)) or len(span) != 2:
                    _fail(where, f"bad span {span!r}; expected [offset, length]")
                offset, length = span
                _check_span(where, offset, length, nbytes)
                if offset <= previous_end:
                    _fail(where, "spans must be sorted and non-overlapping")
                previous_end = offset + length - 1
                clean_spans.append([offset, length])
            self.buffers.append((name, nbytes, clean_spans))

    def _validate_ops(self, ops: Any) -> None:
        if not isinstance(ops, list):
            _fail("ops", "missing or not a list")
        buffer_sizes = {name: nbytes for name, nbytes, _ in self.buffers}
        async_ids = set()
        last_time = 0.0
        for index, op in enumerate(ops):
            where = f"ops[{index}]"
            if not isinstance(op, dict):
                _fail(where, "must be an object")
            kind = op.get("op")
            if kind not in _OP_KINDS:
                _fail(where, f"unknown op kind {kind!r}; expected one of "
                             f"{sorted(_OP_KINDS)}")
            where = f"ops[{index}] ({kind})"
            when = op.get("t")
            if when is not None:
                if not isinstance(when, (int, float)) or isinstance(when, bool):
                    _fail(where, f"t must be a number, got {when!r}")
                if when < 0:
                    _fail(where, f"negative time {when}")
                if when < last_time:
                    _fail(where, f"out-of-order time {when} (previous op at "
                                 f"{last_time})")
                last_time = float(when)
            if kind in _ASYNC_OPS:
                op_id = _require_int(where, op.get("id", index), "id")
                if op_id in async_ids:
                    _fail(where, f"duplicate op id {op_id}")
                async_ids.add(op_id)
            getattr(self, f"_check_{kind}")(where, op, buffer_sizes, async_ids)
            self.ops.append(op)

    def _buffer_nbytes(self, where: str, op: Dict, sizes: Dict[str, int]) -> int:
        name = _require_str(where, op.get("buffer"), "buffer")
        if name not in sizes:
            _fail(where, f"unknown buffer {name!r}; not declared in the "
                         f"buffer table or a prior malloc")
        return sizes[name]

    def _check_measure(self, where, op, sizes, ids) -> None:
        pass

    def _check_stream(self, where, op, sizes, ids) -> None:
        _require_str(where, op.get("stream"), "stream")

    def _check_malloc(self, where, op, sizes, ids) -> None:
        name = _require_str(where, op.get("buffer"), "buffer")
        if name in sizes:
            _fail(where, f"buffer {name!r} already exists")
        sizes[name] = _require_int(where, op.get("nbytes"), "nbytes", 1)

    def _check_free(self, where, op, sizes, ids) -> None:
        name = _require_str(where, op.get("buffer"), "buffer")
        if sizes.pop(name, None) is None:
            _fail(where, f"free of unknown buffer {name!r}")

    def _check_host_access(self, where, op, sizes, ids) -> None:
        nbytes = self._buffer_nbytes(where, op, sizes)
        mode = op.get("mode")
        if mode not in _ACCESS_MODES:
            _fail(where, f"unknown access mode {mode!r}; expected one of "
                         f"{sorted(_ACCESS_MODES)}")
        _check_span(where, op.get("offset", 0), op.get("length", nbytes), nbytes)

    def _check_prefetch(self, where, op, sizes, ids) -> None:
        nbytes = self._buffer_nbytes(where, op, sizes)
        _require_str(where, op.get("dest"), "dest")
        _check_span(where, op.get("offset", 0), op.get("length", nbytes), nbytes)

    def _check_discard(self, where, op, sizes, ids) -> None:
        nbytes = self._buffer_nbytes(where, op, sizes)
        mode = op.get("mode")
        if mode not in _DISCARD_MODES:
            _fail(where, f"unknown discard mode {mode!r}; expected one of "
                         f"{sorted(_DISCARD_MODES)}")
        _check_span(where, op.get("offset", 0), op.get("length", nbytes), nbytes)

    def _check_kernel(self, where, op, sizes, ids) -> None:
        _require_str(where, op.get("kernel"), "kernel")
        duration = op.get("duration")
        if duration is not None:
            if not isinstance(duration, (int, float)) or isinstance(duration, bool):
                _fail(where, f"duration must be a number or null, got {duration!r}")
            if duration < 0:
                _fail(where, f"negative duration {duration}")
        _require_int(where, op.get("waves", 1), "waves", 1)
        accesses = op.get("accesses", [])
        if not isinstance(accesses, list):
            _fail(where, "accesses must be a list")
        for access in accesses:
            if not isinstance(access, dict):
                _fail(where, f"bad access entry {access!r}")
            nbytes = self._buffer_nbytes(where, access, sizes)
            mode = access.get("mode")
            if mode not in _ACCESS_MODES:
                _fail(where, f"unknown access mode {mode!r}")
            _check_span(
                where, access.get("offset", 0), access.get("length", nbytes), nbytes
            )
            _pattern_from_fields(where, access.get("pattern", {"kind": "sequential"}))

    def _check_kernel_raw(self, where, op, sizes, ids) -> None:
        _require_str(where, op.get("kernel"), "kernel")
        duration = op.get("duration")
        if not isinstance(duration, (int, float)) or isinstance(duration, bool):
            _fail(where, f"duration must be a number, got {duration!r}")
        if duration < 0:
            _fail(where, f"negative duration {duration}")

    def _check_memcpy(self, where, op, sizes, ids) -> None:
        if op.get("direction") not in _DIRECTIONS:
            _fail(where, f"unknown direction {op.get('direction')!r}; expected "
                         f"one of {sorted(_DIRECTIONS)}")
        _require_int(where, op.get("nbytes"), "nbytes", 1)
        reason = op.get("reason", TransferReason.MEMCPY.value)
        if reason not in _REASONS:
            _fail(where, f"unknown reason {reason!r}")

    def _check_sync(self, where, op, sizes, ids) -> None:
        stream = op.get("stream")
        if stream is not None and (not isinstance(stream, str) or not stream):
            _fail(where, f"stream must be a name or null, got {stream!r}")

    def _check_wait(self, where, op, sizes, ids) -> None:
        _require_str(where, op.get("stream"), "stream")
        on = op.get("on")
        _require_int(where, on, "on")
        if on not in ids:
            _fail(where, f"wait on id {on} which is not an earlier async op")

    # -- serialization -------------------------------------------------

    def to_document(self) -> Dict[str, Any]:
        """The canonical JSON-serializable form of this trace."""
        return {
            "version": SCHEMA_VERSION,
            "meta": dict(self.meta),
            "buffers": [
                {"name": name, "nbytes": nbytes, "spans": spans}
                for name, nbytes, spans in self.buffers
            ],
            "ops": list(self.ops),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_document(), sort_keys=True, indent=1)


# ----------------------------------------------------------------------
# converters
# ----------------------------------------------------------------------


def chrome_trace_to_replay(chrome: Dict[str, Any]) -> ReplayTrace:
    """Derive a replay trace from a ``repro trace`` Chrome export.

    The export must contain the ``program`` channel (category
    ``program``) that :func:`repro.harness.tracerun.trace_point`
    records; traces truncated by ``max_records`` are rejected because a
    partial op stream cannot reproduce the run.
    """
    if not isinstance(chrome, dict) or "traceEvents" not in chrome:
        _fail("chrome export", "not a Chrome trace (no traceEvents)")
    dropped = chrome.get("otherData", {}).get("dropped_records", 0)
    if dropped:
        _fail("chrome export", f"{dropped} records were dropped (max_records "
                               "truncation); replay needs the full op stream")
    program = [
        event
        for event in chrome["traceEvents"]
        if event.get("cat") == "program" and event.get("ph") == "i"
    ]
    if not program:
        _fail("chrome export", "no program-channel records; re-export the "
                               "trace with `repro trace` (PR 9 or later)")
    program.sort(key=lambda event: event["args"]["id"])
    meta: Dict[str, Any] = {}
    buffers: List[Dict[str, Any]] = []
    ops: List[Dict[str, Any]] = []
    for event in program:
        args = dict(event.get("args") or {})
        record_id = args.pop("id")
        name = event.get("name")
        when = event.get("ts", 0.0) / 1e6
        if name == "experiment":
            meta.update(args)
        elif name == "buffer":
            buffers.append(
                {
                    "name": args.get("buffer"),
                    "nbytes": args.get("nbytes"),
                    "spans": args.get("spans", []),
                }
            )
        elif name == "totals":
            meta["expected"] = args
        else:
            args.pop("functional", None)
            if name == "stream":
                # create_stream records the new stream's name as "name"
                args["stream"] = args.pop("name", None)
            op = {"op": name, "t": when}
            if name in _ASYNC_OPS:
                op["id"] = record_id
            op.update(args)
            ops.append(op)
    if not meta:
        _fail("chrome export", "program channel has no experiment record")
    return ReplayTrace(
        {"version": SCHEMA_VERSION, "meta": meta, "buffers": buffers, "ops": ops}
    )


def _format_pattern(pattern: Dict[str, Any]) -> str:
    if pattern.get("kind") == "irregular":
        return f"irregular:{pattern.get('passes', 1)}:{pattern.get('seed', 0)}"
    return str(pattern.get("kind", "sequential"))


def _parse_pattern(where: str, text: str) -> Dict[str, Any]:
    if text in ("", "sequential"):
        return {"kind": "sequential"}
    if text == "strided":
        return {"kind": "strided"}
    if text.startswith("irregular"):
        parts = text.split(":")
        if len(parts) != 3:
            _fail(where, f"bad pattern {text!r}; expected irregular:<passes>:<seed>")
        try:
            return {"kind": "irregular", "passes": int(parts[1]), "seed": int(parts[2])}
        except ValueError:
            _fail(where, f"bad pattern {text!r}; passes/seed must be integers")
    _fail(where, f"unknown pattern {text!r}")


def _format_extra(pairs: Dict[str, Any]) -> str:
    return ";".join(f"{key}={value}" for key, value in pairs.items() if value is not None)


def _parse_extra(where: str, text: str) -> Dict[str, str]:
    fields: Dict[str, str] = {}
    if not text:
        return fields
    for item in text.split(";"):
        if "=" not in item:
            _fail(where, f"bad extra field {item!r}; expected key=value")
        key, value = item.split("=", 1)
        fields[key] = value
    return fields


def replay_trace_to_csv(trace: ReplayTrace) -> str:
    """Serialize ``trace`` to the documented CSV form."""
    out = io.StringIO()
    out.write(_CSV_MAGIC + "\n")
    meta_bits = []
    for key in _META_FIELDS:
        value = trace.meta.get(key)
        if value is not None:
            meta_bits.append(f"{key}={value}")
    if meta_bits:
        out.write("#meta " + " ".join(meta_bits) + "\n")
    if trace.expected:
        out.write(
            "#expect "
            + " ".join(f"{k}={trace.expected[k]}" for k in _EXPECT_FIELDS)
            + "\n"
        )
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(_CSV_COLUMNS)

    def row(**fields: Any) -> None:
        writer.writerow(["" if fields.get(c) is None else fields.get(c)
                         for c in _CSV_COLUMNS])

    for name, nbytes, spans in trace.buffers:
        row(op="buffer", buffer=name, length=nbytes)
        for offset, length in spans:
            row(op="span", buffer=name, offset=offset, length=length)
    for op in trace.ops:
        kind = op["op"]
        t = op.get("t")
        if kind == "measure":
            row(t=t, op=kind)
        elif kind == "stream":
            row(t=t, op=kind, stream=op["stream"])
        elif kind == "malloc":
            row(t=t, op=kind, buffer=op["buffer"], length=op["nbytes"])
        elif kind == "free":
            row(t=t, op=kind, buffer=op["buffer"])
        elif kind == "host_access":
            row(t=t, op=kind, buffer=op["buffer"], mode=op["mode"],
                offset=op.get("offset", 0), length=op.get("length"))
        elif kind == "prefetch":
            row(t=t, op=kind, id=op["id"], stream=op.get("stream"),
                buffer=op["buffer"], mode=op["dest"],
                offset=op.get("offset", 0), length=op.get("length"))
        elif kind == "discard":
            row(t=t, op=kind, id=op["id"], stream=op.get("stream"),
                buffer=op["buffer"], mode=op["mode"],
                offset=op.get("offset", 0), length=op.get("length"))
        elif kind == "kernel":
            row(t=t, op=kind, id=op["id"], stream=op.get("stream"),
                buffer=op["kernel"], offset=op.get("waves", 1),
                value=op.get("duration"),
                extra=_format_extra(
                    {"flops": op.get("flops", 0.0), "device": op.get("device")}
                ))
            for access in op.get("accesses", []):
                row(op="access", buffer=access["buffer"], mode=access["mode"],
                    offset=access.get("offset", 0), length=access.get("length"),
                    value=_format_pattern(access.get("pattern", {})))
        elif kind == "kernel_raw":
            row(t=t, op=kind, id=op.get("id"), stream=op.get("stream"),
                buffer=op["kernel"], value=op["duration"])
        elif kind == "memcpy":
            row(t=t, op=kind, id=op.get("id"), stream=op.get("stream"),
                mode=op["direction"], length=op["nbytes"],
                value=op.get("reason"),
                extra=_format_extra({"device": op.get("device")}))
        elif kind == "sync":
            row(t=t, op=kind, stream=op.get("stream"))
        elif kind == "wait":
            row(t=t, op=kind, stream=op["stream"], value=op["on"])
    return out.getvalue()


def _csv_int(where: str, text: str, field: str) -> Optional[int]:
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        _fail(where, f"{field} must be an integer, got {text!r}")


def _csv_float(where: str, text: str, field: str) -> Optional[float]:
    if text == "":
        return None
    try:
        return float(text)
    except ValueError:
        _fail(where, f"{field} must be a number, got {text!r}")


def replay_trace_from_csv(text: str) -> ReplayTrace:
    """Parse the documented CSV form into a validated :class:`ReplayTrace`."""
    meta: Dict[str, Any] = {}
    lines = text.splitlines()
    if not lines or lines[0].strip() != _CSV_MAGIC:
        _fail("csv", f"first line must be {_CSV_MAGIC!r}")
    data_lines: List[Tuple[int, str]] = []
    for lineno, line in enumerate(lines[1:], start=2):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#meta ") or stripped.startswith("#expect "):
            pragma, _, rest = stripped.partition(" ")
            target = meta if pragma == "#meta" else meta.setdefault("expected", {})
            fields = _META_FIELDS if pragma == "#meta" else None
            for item in rest.split():
                if "=" not in item:
                    _fail(f"line {lineno}", f"bad pragma field {item!r}")
                key, value = item.split("=", 1)
                if fields is not None:
                    caster = fields.get(key, str)
                    try:
                        target[key] = caster(value)
                    except ValueError:
                        _fail(f"line {lineno}", f"bad {key} value {value!r}")
                else:
                    target[key] = _csv_int(f"line {lineno}", value, key)
            continue
        if stripped.startswith("#"):
            continue
        data_lines.append((lineno, line))
    if not data_lines:
        _fail("csv", "no data rows")
    header_lineno, header_line = data_lines[0]
    header = next(csv.reader([header_line]))
    if tuple(header) != _CSV_COLUMNS:
        _fail(f"line {header_lineno}", f"header must be "
                                       f"{','.join(_CSV_COLUMNS)}")
    buffers: List[Dict[str, Any]] = []
    buffer_index = {}
    ops: List[Dict[str, Any]] = []
    for lineno, line in data_lines[1:]:
        where = f"line {lineno}"
        cells = next(csv.reader([line]))
        if len(cells) != len(_CSV_COLUMNS):
            _fail(where, f"expected {len(_CSV_COLUMNS)} columns, got {len(cells)}")
        rec = dict(zip(_CSV_COLUMNS, cells))
        kind = rec["op"]
        t = _csv_float(where, rec["t"], "t")
        op_id = _csv_int(where, rec["id"], "id")
        offset = _csv_int(where, rec["offset"], "offset")
        length = _csv_int(where, rec["length"], "length")
        extra = _parse_extra(where, rec["extra"])
        if kind == "buffer":
            entry = {"name": rec["buffer"], "nbytes": length, "spans": []}
            buffers.append(entry)
            buffer_index[rec["buffer"]] = entry
        elif kind == "span":
            entry = buffer_index.get(rec["buffer"])
            if entry is None:
                _fail(where, f"span for undeclared buffer {rec['buffer']!r}")
            entry["spans"].append([offset, length])
        elif kind == "measure":
            ops.append({"op": kind, "t": t})
        elif kind == "stream":
            ops.append({"op": kind, "t": t, "stream": rec["stream"]})
        elif kind == "malloc":
            ops.append({"op": kind, "t": t, "buffer": rec["buffer"],
                        "nbytes": length})
        elif kind == "free":
            ops.append({"op": kind, "t": t, "buffer": rec["buffer"]})
        elif kind == "host_access":
            ops.append({"op": kind, "t": t, "buffer": rec["buffer"],
                        "mode": rec["mode"], "offset": offset, "length": length})
        elif kind == "prefetch":
            ops.append({"op": kind, "t": t, "id": op_id, "stream": rec["stream"],
                        "buffer": rec["buffer"], "dest": rec["mode"],
                        "offset": offset, "length": length})
        elif kind == "discard":
            ops.append({"op": kind, "t": t, "id": op_id, "stream": rec["stream"],
                        "buffer": rec["buffer"], "mode": rec["mode"],
                        "offset": offset, "length": length})
        elif kind == "kernel":
            op = {"op": kind, "t": t, "id": op_id, "stream": rec["stream"],
                  "kernel": rec["buffer"], "waves": offset or 1,
                  "duration": _csv_float(where, rec["value"], "duration"),
                  "flops": float(extra.get("flops", 0.0)),
                  "device": extra.get("device"), "accesses": []}
            ops.append(op)
        elif kind == "access":
            if not ops or ops[-1]["op"] != "kernel":
                _fail(where, "access row must follow a kernel row")
            ops[-1]["accesses"].append(
                {"buffer": rec["buffer"], "mode": rec["mode"],
                 "offset": offset, "length": length,
                 "pattern": _parse_pattern(where, rec["value"])})
        elif kind == "kernel_raw":
            ops.append({"op": kind, "t": t, "id": op_id, "stream": rec["stream"],
                        "kernel": rec["buffer"],
                        "duration": _csv_float(where, rec["value"], "duration")})
        elif kind == "memcpy":
            ops.append({"op": kind, "t": t, "id": op_id, "stream": rec["stream"],
                        "direction": rec["mode"], "nbytes": length,
                        "reason": rec["value"] or TransferReason.MEMCPY.value,
                        "device": extra.get("device")})
        elif kind == "sync":
            ops.append({"op": kind, "t": t, "stream": rec["stream"] or None})
        elif kind == "wait":
            ops.append({"op": kind, "t": t, "stream": rec["stream"],
                        "on": _csv_int(where, rec["value"], "on")})
        else:
            _fail(where, f"unknown op kind {kind!r}")
    expected = meta.pop("expected", None)
    if expected is not None:
        meta["expected"] = expected
    return ReplayTrace(
        {"version": SCHEMA_VERSION, "meta": meta, "buffers": buffers, "ops": ops}
    )


def load_replay_trace(path: str) -> ReplayTrace:
    """Load a replay trace from ``path``.

    JSON documents are detected by content: a Chrome export (has
    ``traceEvents``) is converted on the fly via
    :func:`chrome_trace_to_replay`; a replay document (has ``version``)
    is validated directly.  Anything else is parsed as replay CSV.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"replay trace: {path}: bad JSON: {exc}") from None
        if "traceEvents" in document:
            return chrome_trace_to_replay(document)
        return ReplayTrace(document)
    return replay_trace_from_csv(text)


# ----------------------------------------------------------------------
# the workload
# ----------------------------------------------------------------------


class ReplayWorkload:
    """Re-enqueue a validated replay trace against a fresh simulator.

    Split-phase like every other workload: :meth:`setup_program`
    allocates the buffer table and populates the recorded spans
    (CPU-only, quiescent, snapshottable); :meth:`body_program` replays
    the op stream.  Buffers and streams are re-looked-up from the
    runtime inside the body, so forked-snapshot replays work unchanged.
    """

    def __init__(self, trace: ReplayTrace) -> None:
        self.trace = trace

    @property
    def app_bytes(self) -> int:
        declared = self.trace.meta.get("app_bytes")
        if isinstance(declared, int) and declared > 0:
            return declared
        return sum(nbytes for _, nbytes, _ in self.trace.buffers)

    def setup_program(self):
        buffers = self.trace.buffers

        def setup(cuda):
            for name, nbytes, spans in buffers:
                buffer = cuda.malloc_managed(nbytes, name)
                for offset, length in spans:
                    yield from cuda.host_write(
                        buffer, buffer.subrange(offset, length)
                    )

        return setup

    def body_program(self, system: Optional[str] = None):
        """The replay body; ``system`` is accepted for protocol parity
        but ignored — the recorded ops already encode every discard and
        prefetch decision the original system made."""
        ops = self.trace.ops

        def body(cuda):
            buffers = {b.name: b for b in cuda.managed_buffers()}
            streams = {s.name: s for s in cuda.streams()}
            handles: Dict[int, Any] = {}

            def stream_of(name: Optional[str]):
                if name is None:
                    return None
                stream = streams.get(name)
                if stream is None:
                    stream = cuda.create_stream(name)
                    streams[name] = stream
                return stream

            def rng_of(buffer, op):
                offset = op.get("offset", 0)
                length = op.get("length", buffer.nbytes)
                if offset == 0 and length == buffer.nbytes:
                    return None  # reproduce the original whole-buffer call
                return buffer.subrange(offset, length)

            for op in ops:
                kind = op["op"]
                if kind == "measure":
                    cuda.begin_measurement()
                elif kind == "stream":
                    streams[op["stream"]] = cuda.create_stream(op["stream"])
                elif kind == "malloc":
                    buffer = cuda.malloc_managed(op["nbytes"], op["buffer"])
                    buffers[op["buffer"]] = buffer
                elif kind == "free":
                    cuda.free(buffers.pop(op["buffer"]))
                elif kind == "host_access":
                    buffer = buffers[op["buffer"]]
                    mode = AccessMode(op["mode"])
                    access = {
                        AccessMode.READ: cuda.host_read,
                        AccessMode.WRITE: cuda.host_write,
                        AccessMode.READWRITE: cuda.host_update,
                    }[mode]
                    yield from access(buffer, rng_of(buffer, op))
                elif kind == "prefetch":
                    buffer = buffers[op["buffer"]]
                    handles[op["id"]] = cuda.prefetch_async(
                        buffer,
                        destination=op["dest"],
                        rng=rng_of(buffer, op),
                        stream=stream_of(op.get("stream")),
                    )
                elif kind == "discard":
                    buffer = buffers[op["buffer"]]
                    handles[op["id"]] = cuda.discard_async(
                        buffer,
                        rng=rng_of(buffer, op),
                        mode=op["mode"],
                        stream=stream_of(op.get("stream")),
                    )
                elif kind == "kernel":
                    handles[op["id"]] = cuda.launch(
                        self._kernel_spec(op, buffers),
                        stream=stream_of(op.get("stream")),
                        device=op.get("device"),
                    )
                elif kind == "kernel_raw":
                    process = cuda.launch_raw(
                        op["kernel"], op["duration"],
                        stream=stream_of(op.get("stream")),
                    )
                    if "id" in op and op["id"] is not None:
                        handles[op["id"]] = process
                elif kind == "memcpy":
                    process = cuda.memcpy_async(
                        op["nbytes"],
                        TransferDirection(op["direction"]),
                        stream=stream_of(op.get("stream")),
                        reason=TransferReason(
                            op.get("reason", TransferReason.MEMCPY.value)
                        ),
                        device=op.get("device"),
                    )
                    if "id" in op and op["id"] is not None:
                        handles[op["id"]] = process
                elif kind == "sync":
                    yield from cuda.synchronize(stream_of(op.get("stream")))
                elif kind == "wait":
                    stream_of(op["stream"]).wait_for(handles[op["on"]])
            yield from cuda.synchronize()

        return body

    @staticmethod
    def _kernel_spec(op: Dict[str, Any], buffers: Dict[str, Any]):
        from repro.cuda.kernel import BufferAccess, KernelSpec

        accesses = []
        for access in op.get("accesses", []):
            buffer = buffers[access["buffer"]]
            offset = access.get("offset", 0)
            length = access.get("length", buffer.nbytes)
            rng = None
            if offset != 0 or length != buffer.nbytes:
                rng = buffer.subrange(offset, length)
            accesses.append(
                BufferAccess(
                    buffer,
                    AccessMode(access["mode"]),
                    rng=rng,
                    pattern=_pattern_from_fields(
                        "kernel access",
                        access.get("pattern", {"kind": "sequential"}),
                    ),
                )
            )
        return KernelSpec(
            name=op["kernel"],
            accesses=accesses,
            flops=op.get("flops", 0.0) or 0.0,
            duration=op.get("duration"),
            waves=op.get("waves", 1),
        )


# ----------------------------------------------------------------------
# running and checking
# ----------------------------------------------------------------------


# The per-buffer decomposition moved to repro.analysis (the single
# source of truth for byte attribution); re-exported here because the
# replay CLI and its callers grew up importing it from this module.
from repro.analysis.attribution import (  # noqa: E402  (re-export)
    per_buffer_transfer_totals,
)


def run_replay(trace: ReplayTrace, keep_transfer_records: bool = False):
    """Simulate ``trace`` end to end; returns ``(result, runtime)``.

    The GPU, link, scale, oversubscription ratio and driver defaults are
    reconstructed from ``trace.meta`` so the replayed run sees exactly
    the environment of the recorded one.  With ``keep_transfer_records``
    the runtime retains per-transfer records for
    :func:`per_buffer_transfer_totals`.
    """
    from repro.cuda.device import a100_40gb, gtx_1070, rtx_3080ti
    from repro.harness.runner import run_uvm_body, run_uvm_prefix
    from repro.interconnect import pcie_gen3, pcie_gen4

    meta = trace.meta
    gpu_factories = {"rtx3080ti": rtx_3080ti, "gtx1070": gtx_1070, "a100": a100_40gb}
    link_factories = {"gen3": pcie_gen3, "gen4": pcie_gen4}
    if meta["gpu"] not in gpu_factories:
        _fail("meta", f"unknown gpu {meta['gpu']!r}; expected one of "
                      f"{sorted(gpu_factories)}")
    if meta["link"] not in link_factories:
        _fail("meta", f"unknown link {meta['link']!r}; expected one of "
                      f"{sorted(link_factories)}")
    scale = meta.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        _fail("meta", f"bad scale {scale!r}")
    ratio = meta.get("ratio", 1.0)
    if not isinstance(ratio, (int, float)) or isinstance(ratio, bool) or ratio <= 0:
        _fail("meta", f"bad ratio {ratio!r}")
    gpu = gpu_factories[meta["gpu"]]().scaled(scale)
    link = link_factories[meta["link"]]()
    driver_config = None
    if keep_transfer_records:
        from repro.driver.config import UvmDriverConfig

        driver_config = UvmDriverConfig(keep_transfer_records=True)
    workload = ReplayWorkload(trace)
    runtime = run_uvm_prefix(
        workload.setup_program(), gpu, link, driver_config=driver_config
    )
    result = run_uvm_body(
        runtime,
        workload.body_program(),
        meta["system"],
        meta.get("config", "replay"),
        workload.app_bytes,
        float(ratio),
    )
    return result, runtime


def check_replay(trace: ReplayTrace, runtime) -> Dict[str, Any]:
    """Compare a replayed runtime's totals against ``meta.expected``.

    Returns ``{"checked": bool, "ok": bool, "expected": ..., "actual":
    ...}``; ``checked`` is False when the trace carries no expected
    totals.
    """
    traffic = runtime.driver.traffic
    actual = {
        "bytes_h2d": traffic.bytes_h2d,
        "bytes_d2h": traffic.bytes_d2h,
        "transfer_count": traffic.transfer_count,
    }
    if trace.expected is None:
        return {"checked": False, "ok": True, "expected": None, "actual": actual}
    return {
        "checked": True,
        "ok": actual == trace.expected,
        "expected": dict(trace.expected),
        "actual": actual,
    }
