"""BFS — level-synchronous breadth-first search (UVMBench's graph family).

Irregular graph traversal is the access shape the paper's five kernels
never exercise: the edge array is gathered in a data-dependent order, so
prefetching cannot stay ahead of the faults and an oversubscribed run
thrashes on the adjacency structure (UVMBench, arXiv 2007.09822, §IV).

Structure per level *l*:

1. prefetch the *next* frontier (the buffer discarded one level ago —
   the prefetch-paired site that stays lazy under UvmDiscardLazy),
2. BFS kernel: gather the edge array irregularly, READ the current
   frontier, WRITE the next frontier, update the visited map with a
   strided sweep,
3. discard the consumed current frontier — dead until level *l+2*
   overwrites it.

The edge array itself is never discarded (it is re-gathered every
level) and never prefetched — it is the demand-faulted, thrashing
working set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import ConfigurationError
from repro.gpu.access import IrregularPattern, SequentialPattern, StridedPattern
from repro.harness.results import ExperimentResult
from repro.harness.runner import ratio_label, run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.interconnect.link import Link
from repro.units import BIG_PAGE, GB, align_up


@dataclass
class BfsConfig:
    """BFS workload parameters (seeded random adjacency structure)."""

    #: Number of graph nodes; frontiers hold one uint32 per node.
    num_nodes: int = 1 << 27
    #: Average out-degree; the edge array holds ``num_nodes * avg_degree``
    #: uint32 neighbor ids.
    avg_degree: int = 8
    #: Traversal depth: one gather kernel per level.
    levels: int = 6
    #: Sustained GPU throughput over the bytes a level touches.
    kernel_throughput: float = 150 * GB
    #: Fault waves per kernel launch.
    waves: int = 8
    #: Base seed of the per-level irregular gather order.
    seed: int = 0xBF5

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ConfigurationError("num_nodes must be >= 1")
        if self.avg_degree < 1:
            raise ConfigurationError("avg_degree must be >= 1")
        if self.levels < 1:
            raise ConfigurationError("levels must be >= 1")

    @property
    def edge_bytes(self) -> int:
        """The adjacency array, rounded up to whole 2 MiB blocks."""
        return align_up(self.num_nodes * self.avg_degree * 4, BIG_PAGE)

    @property
    def frontier_bytes(self) -> int:
        """One frontier buffer (uint32 per node)."""
        return align_up(self.num_nodes * 4, BIG_PAGE)

    @property
    def visited_bytes(self) -> int:
        """The visited bitmap (one byte per node)."""
        return align_up(self.num_nodes, BIG_PAGE)

    @property
    def app_bytes(self) -> int:
        """GPU footprint: edges + two ping-pong frontiers + visited map."""
        return self.edge_bytes + 2 * self.frontier_bytes + self.visited_bytes

    def scaled(self, factor: float) -> "BfsConfig":
        """Shrink the graph for fast runs (pair with ``gpu.scaled``)."""
        return BfsConfig(
            num_nodes=max(BIG_PAGE // 4, int(self.num_nodes * factor)),
            avg_degree=self.avg_degree,
            levels=self.levels,
            kernel_throughput=self.kernel_throughput,
            waves=self.waves,
            seed=self.seed,
        )


class BfsWorkload:
    """Runs the BFS experiment for one evaluated system."""

    def __init__(self, config: Optional[BfsConfig] = None) -> None:
        self.config = config or BfsConfig()

    def setup_program(self) -> Callable[[CudaRuntime], Generator]:
        """Allocate the graph and seed the initial frontier on the host.
        CPU-only, so the runtime is quiescent (snapshottable) at the end;
        buffers are handed to :meth:`body_program` via ``cuda.session``."""
        cfg = self.config

        def setup(cuda: CudaRuntime) -> Generator:
            edges = cuda.malloc_managed(cfg.edge_bytes, "bfs_edges")
            front_a = cuda.malloc_managed(cfg.frontier_bytes, "bfs_frontier_a")
            front_b = cuda.malloc_managed(cfg.frontier_bytes, "bfs_frontier_b")
            visited = cuda.malloc_managed(cfg.visited_bytes, "bfs_visited")
            yield from cuda.host_write(edges)  # generate the adjacency lists
            yield from cuda.host_write(front_a)  # seed the source frontier
            yield from cuda.host_write(visited)  # clear the visited map
            cuda.session["bfs_edges"] = edges
            cuda.session["bfs_frontier_a"] = front_a
            cuda.session["bfs_frontier_b"] = front_b
            cuda.session["bfs_visited"] = visited

        return setup

    def body_program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The measured traversal for ``system``, resuming from a
        completed :meth:`setup_program` (possibly in a forked runtime)."""
        cfg = self.config
        policy = DiscardPolicy(system)

        def body(cuda: CudaRuntime) -> Generator:
            edges = cuda.session["bfs_edges"]
            frontiers = [
                cuda.session["bfs_frontier_a"],
                cuda.session["bfs_frontier_b"],
            ]
            visited = cuda.session["bfs_visited"]
            cuda.begin_measurement()
            compute = cuda.create_stream("compute")
            transfer = cuda.create_stream("transfer")
            cuda.prefetch_async(visited, stream=transfer)
            cuda.prefetch_async(frontiers[0], stream=transfer)
            level_bytes = cfg.edge_bytes + 2 * cfg.frontier_bytes
            for level in range(cfg.levels):
                current = frontiers[level % 2]
                nxt = frontiers[(level + 1) % 2]
                # The next frontier was discarded at level-1; prefetching
                # it back before the kernel writes is the §5.2 pairing
                # that keeps this site lazy under UvmDiscardLazy.
                prefetched = cuda.prefetch_async(nxt, stream=transfer)
                kernel = KernelSpec(
                    f"bfs_level_{level}",
                    [
                        BufferAccess(
                            edges,
                            AccessMode.READ,
                            pattern=IrregularPattern(seed=cfg.seed + level),
                        ),
                        BufferAccess(
                            current, AccessMode.READ, pattern=SequentialPattern()
                        ),
                        BufferAccess(
                            nxt, AccessMode.WRITE, pattern=SequentialPattern()
                        ),
                        BufferAccess(
                            visited,
                            AccessMode.READWRITE,
                            pattern=StridedPattern(),
                        ),
                    ],
                    duration=level_bytes / cfg.kernel_throughput,
                    waves=cfg.waves,
                )
                compute.wait_for(prefetched)
                cuda.launch(kernel, stream=compute)
                # The consumed frontier is dead; level l+1 prefetches it
                # back as its write target, so every discard except the
                # last is prefetch-paired.
                paired = level + 1 < cfg.levels
                mode = policy.mode_for(paired_with_prefetch=paired)
                if mode is not None:
                    cuda.discard_async(current, mode=mode, stream=compute)
            yield from cuda.synchronize()

        return body

    def program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The host program for ``system`` (a generator function)."""
        setup = self.setup_program()
        body = self.body_program(system)

        def program(cuda: CudaRuntime) -> Generator:
            yield from setup(cuda)
            yield from body(cuda)

        return program

    def run(
        self,
        system: System,
        ratio: float,
        gpu: GpuSpec,
        link: Link,
        driver_config: Optional[UvmDriverConfig] = None,
    ) -> ExperimentResult:
        """Run one oversubscription cell of the BFS table."""
        return run_uvm_experiment(
            self.program(system),
            system.value,
            ratio_label(ratio),
            self.config.app_bytes,
            ratio,
            gpu,
            link,
            driver_config=driver_config,
        )
