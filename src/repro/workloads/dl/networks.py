"""The four evaluated network architectures (§7.5).

Footprints are derived from the real architecture shape math in
:mod:`~repro.workloads.dl.layers`, then calibrated with two per-network
constants — an activation multiplier (CUDNN internal tensors, Darknet's
bookkeeping copies) and a fixed-extra term (library handles, algorithm
workspaces that do not scale with batch) — so that total CUDA allocations
match the paper's §7.5 report:

    VGG-16     12.0 GB @ batch 75   and 21.1 GB @ 150
    Darknet-19 11.2 GB @ batch 171  and 23.4 GB @ 360
    ResNet-53  10.8 GB @ batch 56   and 28.5 GB @ 150
    RNN        10.2 GB @ batch 150  and 20.0 GB @ 300

("ResNet-53" is the 53-convolution residual backbone Darknet ships —
a.k.a. Darknet-53 [24].)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.units import MB
from repro.workloads.dl.layers import (
    DTYPE_BYTES,
    LayerSpec,
    conv_layer,
    fc_layer,
    pool_layer,
    rnn_layer,
)


@dataclass(frozen=True)
class NetworkSpec:
    """A trainable network plus its calibration constants."""

    name: str
    layers: Tuple[LayerSpec, ...]
    #: Input sample size (e.g. 3x224x224 fp32 image).
    input_bytes_per_sample: int
    #: Label size per sample.
    label_bytes_per_sample: int
    #: Scales stored activations (outputs + deltas) to the paper's totals.
    activation_multiplier: float = 1.0
    #: Batch-independent allocation beyond weights (library buffers).
    fixed_extra_bytes: int = 0
    #: Cap on the shared CUDNN-style workspace buffer.
    workspace_cap_bytes: int = 768 * MB
    #: Scales FLOPs (framework efficiency factor).
    flops_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError(f"network {self.name!r} has no layers")

    # -- per-layer derived sizes ----------------------------------------

    def output_bytes(self, layer: LayerSpec, batch_size: int) -> int:
        """Stored activation buffer for one layer at ``batch_size``."""
        return max(
            DTYPE_BYTES,
            int(layer.output_bytes_per_sample * batch_size * self.activation_multiplier),
        )

    def workspace_bytes(self, batch_size: int) -> int:
        """The shared workspace: largest per-layer need, capped.

        Darknet's GEMM loops over the batch one image at a time, so the
        im2col workspace does not scale with batch size; the cap models
        CUDNN picking a cheaper algorithm when the ideal workspace would
        be enormous (the §7.5.2 algorithm switches).
        """
        need = max(l.workspace_bytes_per_sample for l in self.layers)
        return min(int(need), self.workspace_cap_bytes)

    def gradients_bytes(self, batch_size: int) -> int:
        """The shared gradients buffer of Listing 6.

        Sized for the largest layer output at this batch size: it is
        re-written by every layer's backward kernel and consumed by the
        weight update, then discarded (Listing 6).
        """
        largest = max(l.output_bytes_per_sample for l in self.layers)
        return max(
            DTYPE_BYTES,
            int(largest * batch_size * self.activation_multiplier),
        )

    # -- aggregate footprints ---------------------------------------------

    @property
    def weight_bytes(self) -> int:
        return sum(l.weight_bytes for l in self.layers)

    @property
    def per_sample_bytes(self) -> int:
        """Stored-activation bytes per extra sample in a batch.

        The activation multiplier folds in everything the paper's Darknet
        stores alongside the raw layer outputs (normalization copies,
        CUDNN-internal tensors).
        """
        return int(
            sum(l.output_bytes_per_sample for l in self.layers)
            * self.activation_multiplier
        )

    @property
    def fixed_bytes(self) -> int:
        """Batch-independent allocation: weights + library extras."""
        return self.weight_bytes + self.fixed_extra_bytes

    def total_bytes(self, batch_size: int) -> int:
        """Total CUDA buffer allocation at ``batch_size`` (the paper's
        'allocated X GB at batch size Y' numbers)."""
        per_batch = (
            self.per_sample_bytes
            + self.input_bytes_per_sample
            + self.label_bytes_per_sample
        ) * batch_size
        return (
            self.fixed_bytes
            + per_batch
            + self.gradients_bytes(batch_size)
            + self.workspace_bytes(batch_size)
        )

    def flops_per_sample(self) -> Tuple[float, float]:
        """(forward, backward) FLOPs per sample, calibrated."""
        fwd = sum(l.fwd_flops_per_sample for l in self.layers)
        bwd = sum(l.bwd_flops_per_sample for l in self.layers)
        return fwd * self.flops_multiplier, bwd * self.flops_multiplier

    def scaled(self, factor: float) -> "NetworkSpec":
        """Shrink every byte and FLOP count by ``factor``.

        Pair with ``gpu.scaled(factor)``: ratios (oversubscription onset,
        transfer/compute balance, traffic reductions) are preserved while
        simulation cost drops by the same factor.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive: {factor}")
        scaled_layers = tuple(
            LayerSpec(
                name=l.name,
                weight_bytes=max(DTYPE_BYTES, int(l.weight_bytes * factor)),
                output_bytes_per_sample=max(
                    DTYPE_BYTES, int(l.output_bytes_per_sample * factor)
                ),
                workspace_bytes_per_sample=int(l.workspace_bytes_per_sample * factor),
                fwd_flops_per_sample=l.fwd_flops_per_sample * factor,
                bwd_flops_per_sample=l.bwd_flops_per_sample * factor,
            )
            for l in self.layers
        )
        return replace(
            self,
            layers=scaled_layers,
            input_bytes_per_sample=max(
                DTYPE_BYTES, int(self.input_bytes_per_sample * factor)
            ),
            label_bytes_per_sample=max(
                DTYPE_BYTES, int(self.label_bytes_per_sample * factor)
            ),
            fixed_extra_bytes=int(self.fixed_extra_bytes * factor),
            workspace_cap_bytes=max(DTYPE_BYTES, int(self.workspace_cap_bytes * factor)),
        )


def _vgg_block(layers: List[LayerSpec], count: int, in_ch: int, out_ch: int, hw: int) -> int:
    for i in range(count):
        layers.append(
            conv_layer(
                f"conv{out_ch}_{i + 1}", in_ch if i == 0 else out_ch, out_ch, 3, hw
            )
        )
    layers.append(pool_layer(f"pool{out_ch}", out_ch, hw))
    return hw // 2


def vgg16() -> NetworkSpec:
    """VGG-16 on 224x224 ImageNet [36]."""
    layers: List[LayerSpec] = []
    hw = 224
    hw = _vgg_block(layers, 2, 3, 64, hw)
    hw = _vgg_block(layers, 2, 64, 128, hw)
    hw = _vgg_block(layers, 3, 128, 256, hw)
    hw = _vgg_block(layers, 3, 256, 512, hw)
    hw = _vgg_block(layers, 3, 512, 512, hw)
    layers.append(fc_layer("fc6", 512 * hw * hw, 4096))
    layers.append(fc_layer("fc7", 4096, 4096))
    layers.append(fc_layer("fc8", 4096, 1000))
    return NetworkSpec(
        name="VGG-16",
        layers=tuple(layers),
        input_bytes_per_sample=3 * 224 * 224 * DTYPE_BYTES,
        label_bytes_per_sample=1000 * DTYPE_BYTES,
        activation_multiplier=1.65,
        fixed_extra_bytes=2_230 * MB,
    )


def darknet19() -> NetworkSpec:
    """Darknet-19, the YOLO9000 classification backbone [15]."""
    layers: List[LayerSpec] = []
    hw = 224
    layers.append(conv_layer("conv1", 3, 32, 3, hw))
    layers.append(pool_layer("pool1", 32, hw))
    hw //= 2
    layers.append(conv_layer("conv2", 32, 64, 3, hw))
    layers.append(pool_layer("pool2", 64, hw))
    hw //= 2
    for stage, ch in enumerate((128, 256, 512, 1024)):
        layers.append(conv_layer(f"conv{ch}_a", ch // 2, ch, 3, hw))
        layers.append(conv_layer(f"conv{ch}_b", ch, ch // 2, 1, hw))
        layers.append(conv_layer(f"conv{ch}_c", ch // 2, ch, 3, hw))
        if ch >= 512:
            layers.append(conv_layer(f"conv{ch}_d", ch, ch // 2, 1, hw))
            layers.append(conv_layer(f"conv{ch}_e", ch // 2, ch, 3, hw))
        if stage < 3:
            layers.append(pool_layer(f"pool{ch}", ch, hw))
            hw //= 2
    layers.append(fc_layer("classifier", 1024, 1000))
    return NetworkSpec(
        name="Darknet-19",
        layers=tuple(layers),
        input_bytes_per_sample=3 * 224 * 224 * DTYPE_BYTES,
        label_bytes_per_sample=1000 * DTYPE_BYTES,
        activation_multiplier=2.31,
        fixed_extra_bytes=67 * MB,
    )


def resnet53() -> NetworkSpec:
    """The 53-convolution residual network (Darknet-53 [24, 15])."""
    layers: List[LayerSpec] = []
    hw = 256
    layers.append(conv_layer("conv1", 3, 32, 3, hw))
    layers.append(conv_layer("down1", 32, 64, 3, hw, stride=2))
    hw //= 2
    channels = 64
    for stage, blocks in enumerate((1, 2, 8, 8, 4)):
        for b in range(blocks):
            layers.append(
                conv_layer(f"res{stage}_{b}_1x1", channels, channels // 2, 1, hw)
            )
            layers.append(
                conv_layer(f"res{stage}_{b}_3x3", channels // 2, channels, 3, hw)
            )
        if stage < 4:
            layers.append(
                conv_layer(f"down{stage + 2}", channels, channels * 2, 3, hw, stride=2)
            )
            hw //= 2
            channels *= 2
    layers.append(fc_layer("classifier", channels, 1000))
    return NetworkSpec(
        name="ResNet-53",
        layers=tuple(layers),
        input_bytes_per_sample=3 * 256 * 256 * DTYPE_BYTES,
        label_bytes_per_sample=1000 * DTYPE_BYTES,
        activation_multiplier=3.24,
        fixed_extra_bytes=74 * MB,
    )


def rnn_shakespeare() -> NetworkSpec:
    """Darknet's character RNN trained on the Shakespeare corpus [30].

    Three recurrent layers of 1024 hidden units unrolled over a long
    sequence; high FLOPs per stored activation byte make it the paper's
    compute-intensive case.
    """
    steps = 1024
    vocab = 256
    # Each recurrent layer's unroll is split into segments (truncated
    # BPTT): the trainer's per-kernel working set is then one segment's
    # hidden states, matching the step-wise execution of a real RNN.
    segments = 8
    seg_steps = steps // segments
    layer_list: List[LayerSpec] = []
    for seg in range(segments):
        layer_list.append(
            rnn_layer(f"rnn1_seg{seg}", 1024, seg_steps, vocab=vocab)
        )
    for level in (2, 3):
        for seg in range(segments):
            layer_list.append(rnn_layer(f"rnn{level}_seg{seg}", 1024, seg_steps))
    layer_list.append(fc_layer("logits", 1024, vocab))
    layers = tuple(layer_list)
    return NetworkSpec(
        name="RNN",
        layers=layers,
        input_bytes_per_sample=steps * DTYPE_BYTES,
        label_bytes_per_sample=steps * DTYPE_BYTES,
        activation_multiplier=4.98,
        fixed_extra_bytes=195 * MB,
        flops_multiplier=2.0,
    )
