"""Gradient checkpointing under UVM (related work [41]).

The paper's §8 notes an alternative to discarding dead activations:
"recompute intermediate results to save memory consumption, but it does
not ultimately avoid RMTs".  This trainer implements that alternative so
the two can be compared head-to-head:

- **Forward** stores outputs only at every ``segment``-th layer (the
  checkpoints); the others are discarded as soon as the next layer has
  consumed them.
- **Backward** walks segments in reverse: it first *recomputes* the
  segment's forward pass from its checkpoint (paying the forward FLOPs a
  second time), then runs the usual backward + update + discard chain.

Compared with :class:`~repro.workloads.dl.trainer.DarknetTrainer` +
discard, checkpointing shrinks the live activation footprint by roughly
the segment factor — so it moves *less* data when memory is very tight —
but pays ~one extra forward pass of compute, and the data it does keep
(checkpoints, weights, inputs) still incurs exactly the RMTs the discard
directive exists to remove.  The comparison benchmark quantifies the
trade.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.errors import ConfigurationError
from repro.harness.results import ExperimentResult
from repro.harness.runner import run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.interconnect.link import Link
from repro.workloads.dl.networks import NetworkSpec
from repro.workloads.dl.trainer import TrainerConfig, _waves_for

#: Row label for comparison tables.
SYSTEM_NAME = "Checkpoint"


class CheckpointTrainer:
    """Trains with activation recomputation every ``segment`` layers."""

    def __init__(
        self,
        network: NetworkSpec,
        config: TrainerConfig,
        segment: int = 4,
        discard_mode: str = "eager",
    ) -> None:
        if segment < 2:
            raise ConfigurationError("segment must be >= 2 (1 disables "
                                     "checkpointing; use DarknetTrainer)")
        self.network = network
        self.config = config
        self.segment = segment
        self.discard_mode = discard_mode

    @property
    def app_bytes(self) -> int:
        """Peak managed footprint: checkpoints + one live segment."""
        net = self.network
        bs = self.config.batch_size
        outputs = [net.output_bytes(l, bs) for l in net.layers]
        checkpoints = sum(
            size for i, size in enumerate(outputs) if i % self.segment == 0
        )
        largest_segment = max(
            sum(outputs[i : i + self.segment])
            for i in range(0, len(outputs), self.segment)
        )
        return (
            net.fixed_bytes
            + checkpoints
            + largest_segment
            + net.gradients_bytes(bs)
            + net.workspace_bytes(bs)
            + (net.input_bytes_per_sample + net.label_bytes_per_sample) * bs
        )

    def images_per_second(self, runtime: CudaRuntime) -> float:
        measured = runtime.measured_seconds
        if measured <= 0:
            return 0.0
        return self.config.batch_size * self.config.measured_batches / measured

    def program(self) -> Callable[[CudaRuntime], Generator]:
        net = self.network
        cfg = self.config
        segment = self.segment
        mode = self.discard_mode

        def body(cuda: CudaRuntime) -> Generator:
            bs = cfg.batch_size
            data = cuda.malloc_managed(net.input_bytes_per_sample * bs, "data")
            labels = cuda.malloc_managed(net.label_bytes_per_sample * bs, "labels")
            outputs = [
                cuda.malloc_managed(net.output_bytes(l, bs), f"out_{i}")
                for i, l in enumerate(net.layers)
            ]
            weights = [
                cuda.malloc_managed(max(4, l.weight_bytes), f"w_{i}")
                for i, l in enumerate(net.layers)
            ]
            gradients = cuda.malloc_managed(net.gradients_bytes(bs), "gradients")
            for w in weights:
                yield from cuda.host_write(w)
            n = len(net.layers)

            def fwd_kernel(i):
                layer = net.layers[i]
                source = outputs[i - 1] if i > 0 else data
                return KernelSpec(
                    f"fwd_{i}",
                    [
                        BufferAccess(source, AccessMode.READ),
                        BufferAccess(weights[i], AccessMode.READ),
                        BufferAccess(outputs[i], AccessMode.WRITE),
                    ],
                    flops=layer.fwd_flops_per_sample * bs * net.flops_multiplier,
                    waves=_waves_for(outputs[i].nbytes),
                )

            for batch in range(cfg.batches):
                if batch == cfg.warmup_batches:
                    yield from cuda.synchronize()
                    cuda.begin_measurement()
                yield from cuda.host_write(data)
                yield from cuda.host_write(labels)

                # ---- forward, discarding non-checkpoint activations ----
                for i in range(n):
                    cuda.prefetch_async(outputs[i])
                    cuda.launch(fwd_kernel(i))
                    previous = i - 1
                    if previous >= 0 and previous % segment != 0:
                        # outputs[previous] was consumed by fwd_i and is
                        # recomputable: drop it now.
                        cuda.discard_async(outputs[previous], mode=mode)
                if (n - 1) % segment != 0:
                    pass  # the last output feeds the first backward step

                # ---- backward by segments ------------------------------
                for start in range(((n - 1) // segment) * segment, -1, -segment):
                    end = min(start + segment, n)
                    # Recompute the segment's interior from its checkpoint
                    # (the checkpoint itself and anything still live are
                    # prefetched/revived; the rest was reclaimed).
                    for i in range(start + 1, end):
                        cuda.prefetch_async(outputs[i])
                        cuda.launch(fwd_kernel(i))
                    for i in range(end - 1, start - 1, -1):
                        layer = net.layers[i]
                        source = outputs[i - 1] if i > 0 else data
                        incoming = outputs[i + 1] if i + 1 < n else labels
                        cuda.prefetch_async(gradients)
                        cuda.launch(
                            KernelSpec(
                                f"bwd_{i}",
                                [
                                    BufferAccess(incoming, AccessMode.READ),
                                    BufferAccess(outputs[i], AccessMode.READ),
                                    BufferAccess(source, AccessMode.READ),
                                    BufferAccess(weights[i], AccessMode.READ),
                                    BufferAccess(gradients, AccessMode.WRITE),
                                ],
                                flops=layer.bwd_flops_per_sample
                                * bs
                                * net.flops_multiplier,
                                waves=_waves_for(outputs[i].nbytes * 2),
                            )
                        )
                        cuda.launch(
                            KernelSpec(
                                f"update_{i}",
                                [
                                    BufferAccess(gradients, AccessMode.READ),
                                    BufferAccess(weights[i], AccessMode.READWRITE),
                                ],
                                flops=2.0 * layer.weight_bytes,
                                waves=1,
                            )
                        )
                        # Everything consumed above this layer is dead.
                        if i + 1 < n:
                            cuda.discard_async(outputs[i + 1], mode=mode)
                        cuda.discard_async(gradients, mode=mode)
                    yield from cuda.synchronize()
                if n > 0:
                    cuda.discard_async(outputs[0], mode=mode)
                yield from cuda.synchronize()
            yield from cuda.synchronize()

        return body

    def run(
        self,
        gpu: GpuSpec,
        link: Link,
        config_label: Optional[str] = None,
    ) -> ExperimentResult:
        label = config_label or f"bs={self.config.batch_size}"
        return run_uvm_experiment(
            self.program(),
            SYSTEM_NAME,
            label,
            self.network.total_bytes(self.config.batch_size),
            ratio=1.0,
            gpu=gpu,
            link=link,
            metric=self.images_per_second,
        )
