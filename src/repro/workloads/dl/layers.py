"""Layer shape and FLOP arithmetic.

Standard convolution/fully-connected/recurrent layer math, producing the
four quantities the memory system cares about: weight bytes, stored
activation bytes per sample, per-layer CUDNN-style workspace bytes, and
forward/backward FLOPs per sample.  Darknet stores one output and one
delta (activation gradient) buffer per layer, which the trainer allocates
from these specs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Bytes per element (Darknet trains in fp32).
DTYPE_BYTES = 4


@dataclass(frozen=True)
class LayerSpec:
    """One trainable layer's memory and compute footprint."""

    name: str
    #: Parameter bytes (weights + biases).
    weight_bytes: int
    #: Stored output (activation) bytes per training sample.
    output_bytes_per_sample: int
    #: Scratch workspace the layer's kernels need, per sample (im2col /
    #: CUDNN algorithm workspace — dead after each kernel).
    workspace_bytes_per_sample: int
    #: Forward FLOPs per sample.
    fwd_flops_per_sample: float
    #: Backward FLOPs per sample (data + weight gradients).
    bwd_flops_per_sample: float

    def __post_init__(self) -> None:
        if self.weight_bytes < 0 or self.output_bytes_per_sample <= 0:
            raise ConfigurationError(f"layer {self.name!r}: invalid sizes")


def conv_layer(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    in_hw: int,
    stride: int = 1,
) -> LayerSpec:
    """A square 2-D convolution with 'same' padding.

    Output spatial size is ``in_hw / stride``; FLOPs follow the standard
    2·K²·Cin·Cout·H'·W' multiply-accumulate count, with backward costing
    roughly twice forward (input gradients + weight gradients).
    """
    if in_hw % stride != 0:
        raise ConfigurationError(f"layer {name!r}: {in_hw} not divisible by {stride}")
    out_hw = in_hw // stride
    weights = kernel * kernel * in_channels * out_channels + out_channels
    output_elems = out_channels * out_hw * out_hw
    macs = kernel * kernel * in_channels * output_elems
    # im2col workspace: K² input patches for every output position.
    workspace = kernel * kernel * in_channels * out_hw * out_hw * DTYPE_BYTES
    return LayerSpec(
        name=name,
        weight_bytes=weights * DTYPE_BYTES,
        output_bytes_per_sample=output_elems * DTYPE_BYTES,
        workspace_bytes_per_sample=workspace,
        fwd_flops_per_sample=2.0 * macs,
        bwd_flops_per_sample=4.0 * macs,
    )


def pool_layer(name: str, channels: int, in_hw: int, stride: int = 2) -> LayerSpec:
    """Max pooling: no weights, tiny compute, shrinks the activation."""
    if in_hw % stride != 0:
        raise ConfigurationError(f"layer {name!r}: {in_hw} not divisible by {stride}")
    out_hw = in_hw // stride
    output_elems = channels * out_hw * out_hw
    return LayerSpec(
        name=name,
        weight_bytes=0,
        output_bytes_per_sample=output_elems * DTYPE_BYTES,
        workspace_bytes_per_sample=0,
        fwd_flops_per_sample=float(channels * in_hw * in_hw),
        bwd_flops_per_sample=float(channels * in_hw * in_hw),
    )


def fc_layer(name: str, in_features: int, out_features: int) -> LayerSpec:
    """A fully connected layer."""
    weights = in_features * out_features + out_features
    macs = in_features * out_features
    return LayerSpec(
        name=name,
        weight_bytes=weights * DTYPE_BYTES,
        output_bytes_per_sample=out_features * DTYPE_BYTES,
        workspace_bytes_per_sample=0,
        fwd_flops_per_sample=2.0 * macs,
        bwd_flops_per_sample=4.0 * macs,
    )


def rnn_layer(name: str, hidden: int, steps: int, vocab: int = 0) -> LayerSpec:
    """One recurrent layer unrolled over ``steps`` time steps.

    The stored activation is the hidden state at every step (what the
    backward pass consumes); compute is the recurrent matmul per step —
    high FLOPs per stored byte, which is what makes the paper's RNN the
    compute-intensive case (§7.5.2).
    """
    in_features = vocab if vocab else hidden
    weights = (in_features * hidden + hidden * hidden + hidden) * DTYPE_BYTES
    macs_per_step = in_features * hidden + hidden * hidden
    output_elems = hidden * steps
    return LayerSpec(
        name=name,
        weight_bytes=weights,
        output_bytes_per_sample=output_elems * DTYPE_BYTES,
        workspace_bytes_per_sample=hidden * DTYPE_BYTES,
        fwd_flops_per_sample=2.0 * macs_per_step * steps,
        bwd_flops_per_sample=4.0 * macs_per_step * steps,
    )
