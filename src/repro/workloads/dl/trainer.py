"""Darknet-style training loop (Listing 6 and §7.5).

One trainer drives all evaluated systems:

- **No-UVM** — explicit device buffers, Listing-4 style.  Crashes with
  :class:`~repro.errors.OutOfMemoryError` when the footprint exceeds GPU
  memory, exactly as the paper notes for Listing 4.
- **UVM-opt** — managed buffers with per-layer prefetching, overlapped on
  a transfer stream (the paper's baseline).
- **UvmDiscard / UvmDiscardLazy** — UVM-opt plus the Listing-6 discard
  sites: each layer's stored output after its backward pass, each delta
  once consumed, each weight gradient after the update, and the shared
  CUDNN-style workspace (discarded only when memory is oversubscribed —
  when everything fits there is nothing to save).  Output/delta/gradient
  discards are prefetch-paired and may go lazy; workspace stays eager.

Double-buffered prefetch: layer *i*'s buffers are prefetched on a
transfer stream gated on kernel *i−2*, so transfers overlap compute
without running unboundedly ahead of the working set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import ConfigurationError
from repro.harness.results import ExperimentResult
from repro.harness.runner import run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.instrument.traffic import TransferDirection
from repro.interconnect.link import Link
from repro.units import BIG_PAGE
from repro.workloads.dl.networks import NetworkSpec


@dataclass
class TrainerConfig:
    """Training-run parameters.

    The paper trains three warm-up mini-batches and measures the next
    seven; the default here is one warm-up plus two measured, which is
    enough for steady state in the simulator (every batch after the first
    is identical) while keeping benchmark runs fast.
    """

    batch_size: int
    batches: int = 3
    warmup_batches: int = 1

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if not 0 <= self.warmup_batches < self.batches:
            raise ConfigurationError("need at least one measured batch")

    @property
    def measured_batches(self) -> int:
        return self.batches - self.warmup_batches


def _waves_for(nbytes: int) -> int:
    """Fault waves for a kernel touching ``nbytes`` of managed memory."""
    blocks = max(1, nbytes // BIG_PAGE)
    return max(1, min(12, int(blocks // 64)))


class DarknetTrainer:
    """Trains one network under one evaluated system."""

    def __init__(
        self,
        network: NetworkSpec,
        config: TrainerConfig,
        system: System,
    ) -> None:
        self.network = network
        self.config = config
        self.system = system
        self.policy = DiscardPolicy(system)

    @property
    def app_bytes(self) -> int:
        return self.network.total_bytes(self.config.batch_size)

    def images_per_second(self, runtime: CudaRuntime) -> float:
        """Training throughput over the measured batches."""
        measured = runtime.measured_seconds
        if measured <= 0:
            return 0.0
        return self.config.batch_size * self.config.measured_batches / measured

    # ------------------------------------------------------------------
    # programs
    # ------------------------------------------------------------------

    def program(self) -> Callable[[CudaRuntime], Generator]:
        if self.system is System.NO_UVM:
            return self._program_no_uvm()
        setup = self.setup_program()
        body = self.body_program()

        def program(cuda: CudaRuntime) -> Generator:
            yield from setup(cuda)
            yield from body(cuda)

        return program

    def setup_program(self) -> Callable[[CudaRuntime], Generator]:
        """The UVM setup prefix: allocate every managed buffer and
        initialize the model weights on the host.  Depends only on the
        network and trainer config — not on the evaluated system — so
        the sweep harness can simulate it once and fork per system.
        CPU-only, hence quiescent (and snapshottable) afterwards.
        Not defined for No-UVM, which sizes explicit device buffers.
        """
        if self.system is System.NO_UVM:
            raise ConfigurationError("No-UVM has no shareable setup prefix")
        net = self.network
        cfg = self.config

        def setup(cuda: CudaRuntime) -> Generator:
            bs = cfg.batch_size
            data = cuda.malloc_managed(net.input_bytes_per_sample * bs, "data")
            labels = cuda.malloc_managed(net.label_bytes_per_sample * bs, "labels")
            outputs = [
                cuda.malloc_managed(net.output_bytes(l, bs), f"out_{i}_{l.name}")
                for i, l in enumerate(net.layers)
            ]
            weights = [
                cuda.malloc_managed(max(4, l.weight_bytes), f"w_{i}_{l.name}")
                for i, l in enumerate(net.layers)
            ]
            # Listing 6's single shared gradients buffer: rewritten by
            # every backward kernel, consumed by the update, discarded.
            gradients = cuda.malloc_managed(
                net.gradients_bytes(bs), "gradients"
            )
            ws_bytes = net.workspace_bytes(bs)
            workspace = (
                cuda.malloc_managed(ws_bytes, "workspace") if ws_bytes else None
            )
            extra = (
                cuda.malloc_managed(net.fixed_extra_bytes, "library_buffers")
                if net.fixed_extra_bytes
                else None
            )
            # Initialize the model on the host (excluded preprocessing).
            for w in weights:
                yield from cuda.host_write(w)
            cuda.session.update(
                {
                    "dl_data": data,
                    "dl_labels": labels,
                    "dl_outputs": outputs,
                    "dl_weights": weights,
                    "dl_gradients": gradients,
                    "dl_workspace": workspace,
                    "dl_extra": extra,
                }
            )

        return setup

    def body_program(self) -> Callable[[CudaRuntime], Generator]:
        """The measured training loop, resuming from a completed
        :meth:`setup_program` (possibly in a forked runtime)."""
        if self.system is System.NO_UVM:
            raise ConfigurationError("No-UVM has no split body program")
        net = self.network
        cfg = self.config
        policy = self.policy
        prefetch = True  # the "opt" in UVM-opt (§7.1)

        def body(cuda: CudaRuntime) -> Generator:
            bs = cfg.batch_size
            data = cuda.session["dl_data"]
            labels = cuda.session["dl_labels"]
            outputs = cuda.session["dl_outputs"]
            weights = cuda.session["dl_weights"]
            gradients = cuda.session["dl_gradients"]
            workspace = cuda.session["dl_workspace"]
            extra = cuda.session["dl_extra"]
            fits = cuda.driver.gpu_free_bytes(cuda.gpu.name) >= self.app_bytes
            # Discarding the workspace only pays when its frames are
            # worth reclaiming; when everything fits it is pure overhead.
            ws_mode = policy.mode_for(paired_with_prefetch=False) if not fits else None
            act_mode = policy.mode_for(paired_with_prefetch=prefetch)

            compute = cuda.create_stream("compute")
            transfer = cuda.create_stream("transfer")
            n = len(net.layers)

            def ws_access() -> List[BufferAccess]:
                if workspace is None:
                    return []
                return [BufferAccess(workspace, AccessMode.WRITE)]

            detector = None
            if cuda.driver.config.steady_state_fastforward:
                from repro.instrument.steady_state import SteadyStateDetector

                detector = SteadyStateDetector(
                    cuda, cuda.driver.config.steady_state_verify_iterations
                )
            for batch in range(cfg.batches):
                if batch == cfg.warmup_batches:
                    yield from cuda.synchronize()
                    cuda.begin_measurement()
                # Load the next mini-batch (host writes the input buffers).
                yield from cuda.host_write(data)
                yield from cuda.host_write(labels)
                if prefetch:
                    cuda.prefetch_async(data, stream=transfer)
                    cuda.prefetch_async(labels, stream=transfer)

                # ---- forward ------------------------------------------
                kernels: List = [None, None]  # ring of the last two kernels
                for i, layer in enumerate(net.layers):
                    source = outputs[i - 1] if i > 0 else data
                    if prefetch:
                        if kernels[-2] is not None:
                            transfer.wait_for(kernels[-2])
                        gate = cuda.prefetch_async(outputs[i], stream=transfer)
                        compute.wait_for(gate)
                    fwd = KernelSpec(
                        f"fwd_{i}_{layer.name}",
                        [
                            BufferAccess(source, AccessMode.READ),
                            BufferAccess(weights[i], AccessMode.READ),
                            BufferAccess(outputs[i], AccessMode.WRITE),
                        ]
                        + ws_access(),
                        flops=layer.fwd_flops_per_sample * bs * net.flops_multiplier,
                        waves=_waves_for(outputs[i].nbytes),
                    )
                    kernels.append(cuda.launch(fwd, stream=compute))
                    if workspace is not None and ws_mode is not None:
                        cuda.discard_async(workspace, mode=ws_mode, stream=compute)

                # ---- backward + update (Listing 6) ---------------------
                gradients_discard = None
                for i in range(n - 1, -1, -1):
                    layer = net.layers[i]
                    source = outputs[i - 1] if i > 0 else data
                    incoming = outputs[i + 1] if i + 1 < n else labels
                    # The layer's delta occupies only its own-sized prefix
                    # of the shared gradients buffer (Darknet sizes the
                    # delta per layer).
                    grad_rng = gradients.subrange(
                        0, min(gradients.nbytes, net.output_bytes(layer, bs))
                    )
                    if prefetch:
                        if kernels[-2] is not None:
                            transfer.wait_for(kernels[-2])
                        gate = cuda.prefetch_async(outputs[i], stream=transfer)
                        compute.wait_for(gate)
                        if act_mode is None:
                            # No discard in flight: the gradients
                            # prefetch may overlap freely.
                            cuda.prefetch_async(
                                gradients, rng=grad_rng, stream=transfer
                            )
                        else:
                            # §4.2: the gradients prefetch must be
                            # ordered *after* the gradients discard — for
                            # UvmDiscardLazy it is the mandatory
                            # dirty-bit notification.  Enqueueing it on
                            # the compute stream gives that ordering for
                            # free (the discard precedes it there).
                            cuda.prefetch_async(
                                gradients, rng=grad_rng, stream=compute
                            )
                    bwd = KernelSpec(
                        f"bwd_{i}_{layer.name}",
                        [
                            BufferAccess(incoming, AccessMode.READ),
                            BufferAccess(outputs[i], AccessMode.READ),
                            BufferAccess(source, AccessMode.READ),
                            BufferAccess(weights[i], AccessMode.READ),
                            BufferAccess(gradients, AccessMode.WRITE, grad_rng),
                        ]
                        + ws_access(),
                        flops=layer.bwd_flops_per_sample * bs * net.flops_multiplier,
                        waves=_waves_for(outputs[i].nbytes * 2),
                    )
                    kernels.append(cuda.launch(bwd, stream=compute))
                    if workspace is not None and ws_mode is not None:
                        cuda.discard_async(workspace, mode=ws_mode, stream=compute)
                    update = KernelSpec(
                        f"update_{i}_{layer.name}",
                        [
                            BufferAccess(gradients, AccessMode.READ, grad_rng),
                            BufferAccess(weights[i], AccessMode.READWRITE),
                        ],
                        flops=2.0 * layer.weight_bytes,
                        waves=1,
                    )
                    cuda.launch(update, stream=compute)
                    if act_mode is not None:
                        # Listing 6: "outputi+1 now holds useless data"
                        # after backward_i, and "gradients now holds
                        # useless data" after the update.
                        if i + 1 < n:
                            cuda.discard_async(
                                outputs[i + 1], mode=act_mode, stream=compute
                            )
                        gradients_discard = cuda.discard_async(
                            gradients, rng=grad_rng, mode=act_mode, stream=compute
                        )
                if act_mode is not None:
                    cuda.discard_async(outputs[0], mode=act_mode, stream=compute)
                yield from cuda.synchronize()
                # Every batch ends at a fully drained sync: a legal place
                # to compare iteration deltas and, once the loop is
                # provably periodic, replay the delta for the remaining
                # batches instead of simulating them.  Warm-up batches are
                # excluded so begin_measurement always precedes a replay.
                if (
                    detector is not None
                    and batch >= cfg.warmup_batches
                    and detector.mark()
                ):
                    remaining = cfg.batches - batch - 1
                    if remaining:
                        detector.fast_forward(remaining)
                    break
            yield from cuda.synchronize()
            # Keep the linter honest about the library buffer's lifetime.
            assert extra is None or not extra.freed

        return body

    def _program_no_uvm(self) -> Callable[[CudaRuntime], Generator]:
        """Listing 4: explicit buffers; only works when everything fits."""
        net = self.network
        cfg = self.config

        def body(cuda: CudaRuntime) -> Generator:
            bs = cfg.batch_size
            fwd_ps, bwd_ps = net.flops_per_sample()
            # Allocate every buffer up front; OutOfMemoryError propagates
            # when the footprint exceeds device memory ("This will not
            # work if device buffers exceed GPU capacity").
            sizes = [
                net.input_bytes_per_sample * bs,
                net.label_bytes_per_sample * bs,
                net.gradients_bytes(bs),
            ]
            for layer in net.layers:
                sizes.append(net.output_bytes(layer, bs))
                sizes.append(max(4, layer.weight_bytes))
            ws = net.workspace_bytes(bs)
            if ws:
                sizes.append(ws)
            if net.fixed_extra_bytes:
                sizes.append(net.fixed_extra_bytes)
            device_buffers = []
            for index, nbytes in enumerate(sizes):
                buf = yield from cuda.malloc_device(nbytes, f"d_{index}")
                device_buffers.append(buf)
            # Upload the initial weights.
            weight_total = sum(max(4, l.weight_bytes) for l in net.layers)
            cuda.memcpy_async(weight_total, TransferDirection.HOST_TO_DEVICE)
            yield from cuda.synchronize()
            input_total = (
                net.input_bytes_per_sample + net.label_bytes_per_sample
            ) * bs
            for batch in range(cfg.batches):
                if batch == cfg.warmup_batches:
                    yield from cuda.synchronize()
                    cuda.begin_measurement()
                cuda.memcpy_async(input_total, TransferDirection.HOST_TO_DEVICE)
                for i, layer in enumerate(net.layers):
                    cuda.launch_raw(
                        f"fwd_{i}",
                        layer.fwd_flops_per_sample
                        * bs
                        * net.flops_multiplier
                        / cuda.gpu.effective_flops,
                    )
                for i in range(len(net.layers) - 1, -1, -1):
                    layer = net.layers[i]
                    cuda.launch_raw(
                        f"bwd_{i}",
                        layer.bwd_flops_per_sample
                        * bs
                        * net.flops_multiplier
                        / cuda.gpu.effective_flops,
                    )
                    cuda.launch_raw(
                        f"update_{i}",
                        2.0 * layer.weight_bytes / cuda.gpu.effective_flops,
                    )
                yield from cuda.synchronize()
            # Transfer the trained weights back (Listing 4's final step).
            cuda.memcpy_async(weight_total, TransferDirection.DEVICE_TO_HOST)
            yield from cuda.synchronize()

        return body

    # ------------------------------------------------------------------
    # one-call experiment
    # ------------------------------------------------------------------

    def run(
        self,
        gpu: GpuSpec,
        link: Link,
        config_label: Optional[str] = None,
        driver_config: Optional[UvmDriverConfig] = None,
    ) -> ExperimentResult:
        """Train and snapshot a result row; metric is images/second."""
        label = config_label or f"bs={self.config.batch_size}"
        return run_uvm_experiment(
            self.program(),
            self.system.value,
            label,
            self.app_bytes,
            ratio=1.0,  # DL oversubscribes via batch size, not an occupant
            gpu=gpu,
            link=link,
            driver_config=driver_config,
            metric=self.images_per_second,
        )
