"""Deep learning training workloads (§7.5, Table 1, Figures 3/5/6/7).

The paper converts Darknet to the UVM programming model and trains four
networks — VGG-16, Darknet-19, ResNet-53 and a character RNN — inserting
discard directives for the buffers that die during back-propagation
(Listing 6).  This package provides:

- :mod:`~repro.workloads.dl.layers` — layer shape/FLOP arithmetic,
- :mod:`~repro.workloads.dl.networks` — the four architectures with
  footprints calibrated to the paper's reported allocations,
- :mod:`~repro.workloads.dl.trainer` — the Darknet-style training loop
  for every evaluated system (No-UVM, UVM-opt, discard variants),
- :mod:`~repro.workloads.dl.checkpoint` — the gradient-checkpointing
  alternative ([41]) compared against discard in a discussion bench.
"""

from repro.workloads.dl.checkpoint import CheckpointTrainer
from repro.workloads.dl.layers import LayerSpec, conv_layer, fc_layer, rnn_layer
from repro.workloads.dl.networks import (
    NetworkSpec,
    darknet19,
    resnet53,
    rnn_shakespeare,
    vgg16,
)
from repro.workloads.dl.trainer import DarknetTrainer, TrainerConfig

__all__ = [
    "LayerSpec",
    "conv_layer",
    "fc_layer",
    "rnn_layer",
    "NetworkSpec",
    "vgg16",
    "darknet19",
    "resnet53",
    "rnn_shakespeare",
    "DarknetTrainer",
    "TrainerConfig",
    "CheckpointTrainer",
]
