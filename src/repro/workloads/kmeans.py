"""k-means — random-access ML clustering (UVMBench's ML family).

The assignment kernel gathers the point set in a data-dependent order
(points are visited per-cluster-candidate, not in storage order), which
is the random-access shape UVMBench's ML benchmarks stress.  Two
per-iteration intermediates die and are discarded:

- the per-block partial-sum scratch (consumed by the centroid-update
  kernel) — re-prefetched at the next iteration, so its discard is
  prefetch-paired and stays lazy under UvmDiscardLazy (§5.2);
- the assignment vector — fully overwritten by the next iteration's
  kernel without an intervening prefetch, so its discard site is
  unpaired and stays eager in every discard system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import ConfigurationError
from repro.gpu.access import IrregularPattern, SequentialPattern
from repro.harness.results import ExperimentResult
from repro.harness.runner import ratio_label, run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.interconnect.link import Link
from repro.units import BIG_PAGE, GB, align_up


@dataclass
class KMeansConfig:
    """k-means workload parameters."""

    #: Number of points; each point is ``dims`` float32 features.
    num_points: int = 1 << 26
    #: Feature dimensions per point.
    dims: int = 8
    #: Lloyd iterations (assign + update per iteration).
    iterations: int = 4
    #: Sustained GPU throughput over the bytes a kernel touches.
    kernel_throughput: float = 180 * GB
    #: Fault waves per kernel launch.
    waves: int = 8
    #: Base seed of the per-iteration irregular gather order.
    seed: int = 0xC1A

    def __post_init__(self) -> None:
        if self.num_points < 1:
            raise ConfigurationError("num_points must be >= 1")
        if self.dims < 1:
            raise ConfigurationError("dims must be >= 1")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")

    @property
    def points_bytes(self) -> int:
        """The point set, rounded up to whole 2 MiB blocks."""
        return align_up(self.num_points * self.dims * 4, BIG_PAGE)

    @property
    def assign_bytes(self) -> int:
        """The per-point cluster assignment vector (uint32 each)."""
        return align_up(self.num_points * 4, BIG_PAGE)

    @property
    def centroid_bytes(self) -> int:
        """The centroid table (small; one block)."""
        return BIG_PAGE

    @property
    def partial_bytes(self) -> int:
        """Per-block partial-sum scratch consumed by the update kernel."""
        return align_up(self.points_bytes // 8, BIG_PAGE)

    @property
    def app_bytes(self) -> int:
        """GPU footprint: points + assignments + centroids + scratch."""
        return (
            self.points_bytes
            + self.assign_bytes
            + self.centroid_bytes
            + self.partial_bytes
        )

    def scaled(self, factor: float) -> "KMeansConfig":
        """Shrink the point set for fast runs (pair with ``gpu.scaled``)."""
        return KMeansConfig(
            num_points=max(BIG_PAGE // 4, int(self.num_points * factor)),
            dims=self.dims,
            iterations=self.iterations,
            kernel_throughput=self.kernel_throughput,
            waves=self.waves,
            seed=self.seed,
        )


class KMeansWorkload:
    """Runs the k-means experiment for one evaluated system."""

    def __init__(self, config: Optional[KMeansConfig] = None) -> None:
        self.config = config or KMeansConfig()

    def setup_program(self) -> Callable[[CudaRuntime], Generator]:
        """Allocate the buffers and generate the points and initial
        centroids on the host (CPU-only, quiescent at the end)."""
        cfg = self.config

        def setup(cuda: CudaRuntime) -> Generator:
            points = cuda.malloc_managed(cfg.points_bytes, "kmeans_points")
            assign = cuda.malloc_managed(cfg.assign_bytes, "kmeans_assign")
            centroids = cuda.malloc_managed(cfg.centroid_bytes, "kmeans_centroids")
            partial = cuda.malloc_managed(cfg.partial_bytes, "kmeans_partial")
            yield from cuda.host_write(points)  # generate the point cloud
            yield from cuda.host_write(centroids)  # seed initial centroids
            cuda.session["kmeans_points"] = points
            cuda.session["kmeans_assign"] = assign
            cuda.session["kmeans_centroids"] = centroids
            cuda.session["kmeans_partial"] = partial

        return setup

    def body_program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The measured Lloyd iterations for ``system``."""
        cfg = self.config
        policy = DiscardPolicy(system)

        def body(cuda: CudaRuntime) -> Generator:
            points = cuda.session["kmeans_points"]
            assign = cuda.session["kmeans_assign"]
            centroids = cuda.session["kmeans_centroids"]
            partial = cuda.session["kmeans_partial"]
            cuda.begin_measurement()
            compute = cuda.create_stream("compute")
            transfer = cuda.create_stream("transfer")
            cuda.prefetch_async(centroids, stream=transfer)
            for iteration in range(cfg.iterations):
                # The partial-sum scratch was discarded last iteration;
                # the prefetch-before-reuse pairing keeps its discard
                # site lazy under UvmDiscardLazy.
                prefetched = cuda.prefetch_async(partial, stream=transfer)
                assign_kernel = KernelSpec(
                    f"kmeans_assign_{iteration}",
                    [
                        BufferAccess(
                            points,
                            AccessMode.READ,
                            pattern=IrregularPattern(seed=cfg.seed + iteration),
                        ),
                        BufferAccess(
                            centroids, AccessMode.READ, pattern=SequentialPattern()
                        ),
                        BufferAccess(
                            assign, AccessMode.WRITE, pattern=SequentialPattern()
                        ),
                        BufferAccess(
                            partial, AccessMode.WRITE, pattern=SequentialPattern()
                        ),
                    ],
                    duration=cfg.points_bytes / cfg.kernel_throughput,
                    waves=cfg.waves,
                )
                compute.wait_for(prefetched)
                cuda.launch(assign_kernel, stream=compute)
                update_kernel = KernelSpec(
                    f"kmeans_update_{iteration}",
                    [
                        BufferAccess(
                            partial, AccessMode.READ, pattern=SequentialPattern()
                        ),
                        BufferAccess(
                            centroids,
                            AccessMode.READWRITE,
                            pattern=SequentialPattern(),
                        ),
                    ],
                    duration=cfg.partial_bytes / cfg.kernel_throughput,
                    waves=max(1, cfg.waves // 2),
                )
                cuda.launch(update_kernel, stream=compute)
                # The partial sums die with the update kernel; the next
                # iteration prefetches them back (paired site).
                paired = iteration + 1 < cfg.iterations
                mode = policy.mode_for(paired_with_prefetch=paired)
                if mode is not None:
                    cuda.discard_async(partial, mode=mode, stream=compute)
                # Assignments are overwritten next iteration without a
                # prefetch — an unpaired site that stays eager (§5.2).
                mode = policy.mode_for(paired_with_prefetch=False)
                if mode is not None:
                    cuda.discard_async(assign, mode=mode, stream=compute)
            yield from cuda.synchronize()

        return body

    def program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The host program for ``system`` (a generator function)."""
        setup = self.setup_program()
        body = self.body_program(system)

        def program(cuda: CudaRuntime) -> Generator:
            yield from setup(cuda)
            yield from body(cuda)

        return program

    def run(
        self,
        system: System,
        ratio: float,
        gpu: GpuSpec,
        link: Link,
        driver_config: Optional[UvmDriverConfig] = None,
    ) -> ExperimentResult:
        """Run one oversubscription cell of the k-means table."""
        return run_uvm_experiment(
            self.program(system),
            system.value,
            ratio_label(ratio),
            self.config.app_bytes,
            ratio,
            gpu,
            link,
            driver_config=driver_config,
        )
