"""2D stencil — Jacobi iteration over ping-pong grids (UVMBench's HPC family).

Each sweep reads the source grid with neighbor halos and writes the
target grid; the grids ping-pong between iterations.  Reading a
row-major grid tile-by-tile touches neighbor *rows* sequentially but
neighbor *columns* at a full-row stride — modelled by a strided source
sweep whose every wave spans the whole grid, so an oversubscribed run
thrashes even though each block is touched once (UVMBench,
arXiv 2007.09822, §IV).

The consumed source grid is dead after the sweep and discarded; the
next iteration prefetches it back as its write target, making every
discard except the last prefetch-paired — the radix-sort ping-pong
shape (§7.3) at stencil access granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.access import AccessMode
from repro.cuda.device import GpuSpec
from repro.cuda.kernel import BufferAccess, KernelSpec
from repro.cuda.runtime import CudaRuntime
from repro.driver.config import UvmDriverConfig
from repro.errors import ConfigurationError
from repro.gpu.access import SequentialPattern, StridedPattern
from repro.harness.results import ExperimentResult
from repro.harness.runner import ratio_label, run_uvm_experiment
from repro.harness.systems import DiscardPolicy, System
from repro.interconnect.link import Link
from repro.units import BIG_PAGE, GB, align_up


@dataclass
class StencilConfig:
    """2D Jacobi stencil parameters."""

    #: Grid rows (float32 cells).
    rows: int = 1 << 14
    #: Grid columns.
    cols: int = 1 << 14
    #: Jacobi sweeps (one kernel per sweep, grids ping-pong).
    iterations: int = 6
    #: Sustained GPU throughput over the bytes a sweep touches.
    kernel_throughput: float = 200 * GB
    #: Fault waves per kernel launch.
    waves: int = 8

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("grid dimensions must be >= 1")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")

    @property
    def grid_bytes(self) -> int:
        """One grid, rounded up to whole 2 MiB blocks."""
        return align_up(self.rows * self.cols * 4, BIG_PAGE)

    @property
    def app_bytes(self) -> int:
        """GPU footprint: the two ping-pong grids."""
        return 2 * self.grid_bytes

    def scaled(self, factor: float) -> "StencilConfig":
        """Shrink the grid for fast runs (pair with ``gpu.scaled``).

        Scales rows only, so the column stride (the thrash-inducing
        halo distance) keeps its shape.
        """
        min_rows = -(-BIG_PAGE // (4 * self.cols))  # ceil: one whole block
        return StencilConfig(
            rows=max(min_rows, int(self.rows * factor)),
            cols=self.cols,
            iterations=self.iterations,
            kernel_throughput=self.kernel_throughput,
            waves=self.waves,
        )


class StencilWorkload:
    """Runs the stencil experiment for one evaluated system."""

    def __init__(self, config: Optional[StencilConfig] = None) -> None:
        self.config = config or StencilConfig()

    def setup_program(self) -> Callable[[CudaRuntime], Generator]:
        """Allocate the grids and initialize the boundary values on the
        host (CPU-only, quiescent at the end)."""
        cfg = self.config

        def setup(cuda: CudaRuntime) -> Generator:
            grid_a = cuda.malloc_managed(cfg.grid_bytes, "stencil_grid_a")
            grid_b = cuda.malloc_managed(cfg.grid_bytes, "stencil_grid_b")
            yield from cuda.host_write(grid_a)  # initial + boundary values
            cuda.session["stencil_grid_a"] = grid_a
            cuda.session["stencil_grid_b"] = grid_b

        return setup

    def body_program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The measured Jacobi sweeps for ``system``."""
        cfg = self.config
        policy = DiscardPolicy(system)

        def body(cuda: CudaRuntime) -> Generator:
            grids = [
                cuda.session["stencil_grid_a"],
                cuda.session["stencil_grid_b"],
            ]
            cuda.begin_measurement()
            compute = cuda.create_stream("compute")
            transfer = cuda.create_stream("transfer")
            cuda.prefetch_async(grids[0], stream=transfer)
            for i in range(cfg.iterations):
                source = grids[i % 2]
                target = grids[(i + 1) % 2]
                # The target was discarded when it was iteration i-1's
                # source; the prefetch-before-write pairing keeps the
                # site lazy under UvmDiscardLazy.
                prefetched = cuda.prefetch_async(target, stream=transfer)
                kernel = KernelSpec(
                    f"stencil_sweep_{i}",
                    [
                        BufferAccess(
                            source, AccessMode.READ, pattern=StridedPattern()
                        ),
                        BufferAccess(
                            target, AccessMode.WRITE, pattern=SequentialPattern()
                        ),
                    ],
                    duration=2 * cfg.grid_bytes / cfg.kernel_throughput,
                    waves=cfg.waves,
                )
                compute.wait_for(prefetched)
                cuda.launch(kernel, stream=compute)
                # The consumed source grid is dead until iteration i+1
                # overwrites it; every discard but the last is paired.
                paired = i + 1 < cfg.iterations
                mode = policy.mode_for(paired_with_prefetch=paired)
                if mode is not None:
                    cuda.discard_async(source, mode=mode, stream=compute)
            yield from cuda.synchronize()

        return body

    def program(self, system: System) -> Callable[[CudaRuntime], Generator]:
        """The host program for ``system`` (a generator function)."""
        setup = self.setup_program()
        body = self.body_program(system)

        def program(cuda: CudaRuntime) -> Generator:
            yield from setup(cuda)
            yield from body(cuda)

        return program

    def run(
        self,
        system: System,
        ratio: float,
        gpu: GpuSpec,
        link: Link,
        driver_config: Optional[UvmDriverConfig] = None,
    ) -> ExperimentResult:
        """Run one oversubscription cell of the stencil table."""
        return run_uvm_experiment(
            self.program(system),
            system.value,
            ratio_label(ratio),
            self.config.app_bytes,
            ratio,
            gpu,
            link,
            driver_config=driver_config,
        )
