"""The paper's evaluation workloads (§7) plus UVMBench-style categories.

- :mod:`~repro.workloads.vector_add` — the Listing 1/2/3 running example,
  in explicit-copy, UVM and UVM+discard form (functional: computes real
  sums).
- :mod:`~repro.workloads.fir` — finite impulse response filter over a
  sliding input window (§7.2).
- :mod:`~repro.workloads.radix_sort` — ping-pong radix sort with
  irregular, thrashing access (§7.3).
- :mod:`~repro.workloads.hash_join` — GPU database hash-join with large
  discardable intermediates (§7.4).
- :mod:`~repro.workloads.dl` — Darknet-style deep learning training:
  VGG-16, Darknet-19, ResNet-53 and RNN (§7.5).

UVMBench-style categories (arXiv 2007.09822), each with paper-style
discard placement — see ``docs/WORKLOADS.md``:

- :mod:`~repro.workloads.bfs` — irregular graph traversal with
  ping-pong frontiers.
- :mod:`~repro.workloads.kmeans` — random-access ML clustering.
- :mod:`~repro.workloads.knn` — batched k-nearest-neighbor search.
- :mod:`~repro.workloads.stencil` — 2D Jacobi sweeps over ping-pong
  grids.
- :mod:`~repro.workloads.reduction` — log-depth tree reduction.
- :mod:`~repro.workloads.replay` — replays an exported access trace as
  a workload.
"""

from repro.workloads.bfs import BfsConfig, BfsWorkload
from repro.workloads.fir import FirConfig, FirWorkload
from repro.workloads.hash_join import HashJoinConfig, HashJoinWorkload
from repro.workloads.kmeans import KMeansConfig, KMeansWorkload
from repro.workloads.knn import KnnConfig, KnnWorkload
from repro.workloads.radix_sort import RadixSortConfig, RadixSortWorkload
from repro.workloads.reduction import ReductionConfig, ReductionWorkload
from repro.workloads.stencil import StencilConfig, StencilWorkload
from repro.workloads.functional import (
    functional_bfs,
    functional_hash_join,
    functional_kmeans,
    functional_knn,
    functional_radix_sort,
    functional_reduction,
    functional_stencil,
)
from repro.workloads.replay import (
    ReplayTrace,
    ReplayWorkload,
    TraceFormatError,
    chrome_trace_to_replay,
    load_replay_trace,
    run_replay,
)
from repro.workloads.vector_add import (
    explicit_vector_add,
    uvm_vector_add,
)

__all__ = [
    "BfsConfig",
    "BfsWorkload",
    "FirConfig",
    "FirWorkload",
    "HashJoinConfig",
    "HashJoinWorkload",
    "KMeansConfig",
    "KMeansWorkload",
    "KnnConfig",
    "KnnWorkload",
    "RadixSortConfig",
    "RadixSortWorkload",
    "ReductionConfig",
    "ReductionWorkload",
    "ReplayTrace",
    "ReplayWorkload",
    "StencilConfig",
    "StencilWorkload",
    "TraceFormatError",
    "chrome_trace_to_replay",
    "load_replay_trace",
    "run_replay",
    "explicit_vector_add",
    "uvm_vector_add",
    "functional_bfs",
    "functional_hash_join",
    "functional_kmeans",
    "functional_knn",
    "functional_radix_sort",
    "functional_reduction",
    "functional_stencil",
]
