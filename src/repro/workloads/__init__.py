"""The paper's evaluation workloads (§7).

- :mod:`~repro.workloads.vector_add` — the Listing 1/2/3 running example,
  in explicit-copy, UVM and UVM+discard form (functional: computes real
  sums).
- :mod:`~repro.workloads.fir` — finite impulse response filter over a
  sliding input window (§7.2).
- :mod:`~repro.workloads.radix_sort` — ping-pong radix sort with
  irregular, thrashing access (§7.3).
- :mod:`~repro.workloads.hash_join` — GPU database hash-join with large
  discardable intermediates (§7.4).
- :mod:`~repro.workloads.dl` — Darknet-style deep learning training:
  VGG-16, Darknet-19, ResNet-53 and RNN (§7.5).
"""

from repro.workloads.fir import FirConfig, FirWorkload
from repro.workloads.hash_join import HashJoinConfig, HashJoinWorkload
from repro.workloads.radix_sort import RadixSortConfig, RadixSortWorkload
from repro.workloads.functional import functional_hash_join, functional_radix_sort
from repro.workloads.vector_add import (
    explicit_vector_add,
    uvm_vector_add,
)

__all__ = [
    "FirConfig",
    "FirWorkload",
    "HashJoinConfig",
    "HashJoinWorkload",
    "RadixSortConfig",
    "RadixSortWorkload",
    "explicit_vector_add",
    "uvm_vector_add",
    "functional_radix_sort",
    "functional_hash_join",
]
