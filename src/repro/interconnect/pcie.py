"""PCI Express link presets.

Calibrated to the paper's testbed (§7.1): an AMD B550 board whose PCIe-4
x16 slot is bottlenecked at 25 GB/s by DDR4-3200 host memory, switchable
to PCIe-3 at roughly half that.  The half-saturation size reproduces the
knee of Figure 4, where throughput climbs steeply between 64 KiB and a few
MiB transfers.
"""

from __future__ import annotations

from repro.interconnect.link import Link
from repro.units import GB, KIB, us

#: Peak host<->device bandwidth on the paper's PCIe-4 testbed (DDR4 bound).
PCIE4_PEAK = 25 * GB

#: Peak bandwidth with the board switched to PCIe-3.
PCIE3_PEAK = 12.6 * GB

#: Chunk size reaching half of peak throughput (Figure 4 knee).
PCIE_HALF_SIZE = 128 * KIB

#: Per-DMA-command latency (driver + DMA setup + completion).
PCIE_LATENCY = us(8.0)


def pcie_gen4() -> Link:
    """The paper's PCIe-4 configuration (25 GB/s peak)."""
    return Link("PCIe-4", PCIE4_PEAK, half_size=PCIE_HALF_SIZE, latency=PCIE_LATENCY)


def pcie_gen3() -> Link:
    """The paper's PCIe-3 configuration (~12.6 GB/s peak)."""
    return Link("PCIe-3", PCIE3_PEAK, half_size=PCIE_HALF_SIZE, latency=PCIE_LATENCY)
