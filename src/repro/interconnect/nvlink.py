"""NVLink preset.

The paper's §2.3 notes that even cache-coherent interconnects such as
NVLink leave a large local/remote bandwidth gap (GPU local >2 TB/s vs
25 GB/s GPU-to-CPU over NVLink on POWER9 systems), so page placement and a
discard directive remain necessary.  This preset exists for the discussion
benches; every evaluation table in the paper uses PCIe.
"""

from __future__ import annotations

from repro.interconnect.link import Link
from repro.units import GB, KIB, us

#: CPU<->GPU NVLink 2.0 bandwidth on POWER9-class systems (per direction).
NVLINK_CPU_GPU_PEAK = 75 * GB

#: NVLink has lower per-transfer latency than PCIe.
NVLINK_LATENCY = us(3.0)


def nvlink_gen3() -> Link:
    """A POWER9-style CPU-GPU NVLink configuration."""
    return Link(
        "NVLink",
        NVLINK_CPU_GPU_PEAK,
        half_size=64 * KIB,
        latency=NVLINK_LATENCY,
    )
