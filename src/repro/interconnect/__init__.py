"""CPU-GPU interconnect models.

The paper's evaluation (Figure 4) shows that PCIe transfer throughput is a
strong function of transfer size: small transfers are dominated by
per-transaction overhead and only large contiguous transfers approach the
link's peak.  :class:`~repro.interconnect.link.Link` captures this with a
saturating bandwidth curve; :mod:`~repro.interconnect.pcie` and
:mod:`~repro.interconnect.nvlink` provide calibrated instances.
"""

from repro.interconnect.link import Link, TransferDirection
from repro.interconnect.nvlink import nvlink_gen3
from repro.interconnect.pcie import pcie_gen3, pcie_gen4

__all__ = [
    "Link",
    "TransferDirection",
    "pcie_gen3",
    "pcie_gen4",
    "nvlink_gen3",
]
