"""Saturating-bandwidth link model.

Effective bandwidth for a transfer issued in chunks of size ``s`` follows

    B(s) = peak * s / (s + half_size)

a textbook half-saturation curve: at ``s == half_size`` the link achieves
half its peak, and large chunks asymptotically approach ``peak``.  This
reproduces the shape of the paper's Figure 4 (`cudaMemPrefetchAsync`
throughput vs transfer size on PCIe-3/4) with a single calibration
parameter, and it is why the discard machinery prefers full 2 MiB blocks
(§5.4): partially discarding a block forces the remainder to move in
smaller, slower pieces.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.units import BIG_PAGE


class TransferDirection(enum.Enum):
    """Direction of a host/device transfer, named after CUDA's memcpy kinds."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"
    DEVICE_TO_DEVICE = "d2d"

    @property
    def short(self) -> str:
        return self.value


class Link:
    """A bidirectional CPU-GPU interconnect.

    Args:
        name: human-readable name ("PCIe-4", "NVLink3"...).
        peak_bandwidth: asymptotic bandwidth in bytes/second (per direction;
            the model assumes full duplex, which PCIe and NVLink provide).
        half_size: chunk size in bytes at which half the peak is reached.
        latency: fixed per-transfer-command latency in seconds (DMA setup,
            driver work, completion interrupt).
    """

    def __init__(
        self,
        name: str,
        peak_bandwidth: float,
        half_size: int = 128 * 1024,
        latency: float = 8e-6,
    ) -> None:
        if peak_bandwidth <= 0:
            raise ValueError(f"peak bandwidth must be positive: {peak_bandwidth}")
        if half_size <= 0:
            raise ValueError(f"half_size must be positive: {half_size}")
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.name = name
        self.peak_bandwidth = peak_bandwidth
        self.half_size = half_size
        self.latency = latency

    def effective_bandwidth(self, chunk: int) -> float:
        """Sustained bytes/second when transferring in ``chunk``-byte pieces."""
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        return self.peak_bandwidth * chunk / (chunk + self.half_size)

    def transfer_time(self, nbytes: int, chunk: Optional[int] = None) -> float:
        """Seconds to move ``nbytes`` as one command of ``chunk``-sized pieces.

        ``chunk`` defaults to the full transfer size capped at 2 MiB — the
        granularity at which the UVM driver coalesces contiguous pages.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        if chunk is None:
            chunk = min(nbytes, BIG_PAGE) if nbytes < BIG_PAGE else BIG_PAGE
        return self.latency + nbytes / self.effective_bandwidth(chunk)

    def measured_throughput(self, nbytes: int, chunk: Optional[int] = None) -> float:
        """End-to-end bytes/second including latency — what Figure 4 plots."""
        duration = self.transfer_time(nbytes, chunk)
        if duration == 0.0:
            return 0.0
        return nbytes / duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} peak={self.peak_bandwidth / 1e9:.1f}GB/s>"
