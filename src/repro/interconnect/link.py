"""Saturating-bandwidth link model.

Effective bandwidth for a transfer issued in chunks of size ``s`` follows

    B(s) = peak * s / (s + half_size)

a textbook half-saturation curve: at ``s == half_size`` the link achieves
half its peak, and large chunks asymptotically approach ``peak``.  This
reproduces the shape of the paper's Figure 4 (`cudaMemPrefetchAsync`
throughput vs transfer size on PCIe-3/4) with a single calibration
parameter, and it is why the discard machinery prefers full 2 MiB blocks
(§5.4): partially discarding a block forces the remainder to move in
smaller, slower pieces.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.units import BIG_PAGE


class TransferDirection(enum.Enum):
    """Direction of a host/device transfer, named after CUDA's memcpy kinds."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"
    DEVICE_TO_DEVICE = "d2d"

    @property
    def short(self) -> str:
        return self.value


class Link:
    """A bidirectional CPU-GPU interconnect.

    Args:
        name: human-readable name ("PCIe-4", "NVLink3"...).
        peak_bandwidth: asymptotic bandwidth in bytes/second (per direction;
            the model assumes full duplex, which PCIe and NVLink provide).
        half_size: chunk size in bytes at which half the peak is reached.
        latency: fixed per-transfer-command latency in seconds (DMA setup,
            driver work, completion interrupt).
    """

    def __init__(
        self,
        name: str,
        peak_bandwidth: float,
        half_size: int = 128 * 1024,
        latency: float = 8e-6,
    ) -> None:
        if peak_bandwidth <= 0:
            raise ValueError(f"peak bandwidth must be positive: {peak_bandwidth}")
        if half_size <= 0:
            raise ValueError(f"half_size must be positive: {half_size}")
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.name = name
        self.peak_bandwidth = peak_bandwidth
        self.half_size = half_size
        self.latency = latency
        #: Multiplier on sustained bandwidth while the link is degraded
        #: (thermal throttling, lane downtraining, congested switch).
        #: 1.0 is healthy; the chaos injector lowers and later restores it.
        self.degradation_factor = 1.0
        #: Transient extra per-command latency (retimer retraining, replay
        #: buffers) added on top of :attr:`latency` while degraded.
        self.extra_latency = 0.0
        # Armed transient transfer faults: each makes exactly one future
        # DMA command fail mid-flight and be retried by the migration
        # engine's recovery path.
        self._armed_faults = 0
        #: When set, no single DMA command consumes more than this many
        #: armed faults; the surplus carries over to later commands.  A
        #: fault injector sets this below the migration engine's retry
        #: budget so that faults armed *during* a command's retry backoff
        #: can never push that command past the budget — chaos exercises
        #: the retry path without ever failing a transfer outright.
        #: ``None`` (the default) leaves consumption unbounded.
        self.fault_consumption_limit: Optional[int] = None
        # Memoized transfer_time results keyed by (nbytes, chunk).  The
        # driver moves the same span sizes over and over (whole 2 MiB
        # blocks, the handful of partial-block sizes a workload uses), so
        # this turns the float arithmetic into one dict hit.  Invalidated
        # whenever the service state changes (degrade/restore are the
        # only mutation points).
        self._time_cache: dict = {}

    def degrade(self, factor: float, extra_latency: float = 0.0) -> None:
        """Enter a degraded service state.

        ``factor`` scales sustained bandwidth (0 < factor <= 1) and
        ``extra_latency`` is added to every command until :meth:`restore`.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degradation factor must be in (0, 1]: {factor}")
        if extra_latency < 0:
            raise ValueError(f"negative extra latency: {extra_latency}")
        self.degradation_factor = factor
        self.extra_latency = extra_latency
        self._time_cache.clear()

    def restore(self) -> None:
        """Return to full-rate service (undo :meth:`degrade`)."""
        self.degradation_factor = 1.0
        self.extra_latency = 0.0
        self._time_cache.clear()

    @property
    def degraded(self) -> bool:
        return self.degradation_factor != 1.0 or self.extra_latency != 0.0

    def inject_transfer_fault(self, count: int = 1) -> None:
        """Arm ``count`` transient faults: the next ``count`` DMA commands
        each fail once and must be retried by the caller."""
        if count < 0:
            raise ValueError(f"negative fault count: {count}")
        self._armed_faults += count

    def consume_transfer_fault(self) -> bool:
        """Consume one armed fault if any; the migration engine polls this
        once per transfer attempt."""
        if self._armed_faults > 0:
            self._armed_faults -= 1
            return True
        return False

    @property
    def armed_faults(self) -> int:
        return self._armed_faults

    def effective_bandwidth(self, chunk: int) -> float:
        """Sustained bytes/second when transferring in ``chunk``-byte pieces."""
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        bandwidth = self.peak_bandwidth * chunk / (chunk + self.half_size)
        return bandwidth * self.degradation_factor

    def transfer_time(self, nbytes: int, chunk: Optional[int] = None) -> float:
        """Seconds to move ``nbytes`` as one command of ``chunk``-sized pieces.

        ``chunk`` defaults to the full transfer size capped at 2 MiB — the
        granularity at which the UVM driver coalesces contiguous pages.
        """
        cached = self._time_cache.get((nbytes, chunk))
        if cached is not None:
            return cached
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if nbytes == 0:
            return 0.0
        key = (nbytes, chunk)
        if chunk is None:
            chunk = min(nbytes, BIG_PAGE) if nbytes < BIG_PAGE else BIG_PAGE
        seconds = (
            self.latency
            + self.extra_latency
            + nbytes / self.effective_bandwidth(chunk)
        )
        if len(self._time_cache) < 4096:
            self._time_cache[key] = seconds
        return seconds

    def measured_throughput(self, nbytes: int, chunk: Optional[int] = None) -> float:
        """End-to-end bytes/second including latency — what Figure 4 plots."""
        duration = self.transfer_time(nbytes, chunk)
        if duration == 0.0:
            return 0.0
        return nbytes / duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} peak={self.peak_bandwidth / 1e9:.1f}GB/s>"
