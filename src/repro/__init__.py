"""repro — a reproduction of "UVM Discard: Eliminating Redundant Memory
Transfers for Accelerators" (Zhu et al., IISWC 2022).

The package is a discrete-event simulator of a CPU-GPU unified-virtual-
memory platform — driver, page queues, interconnect, faults, eviction —
with the paper's two discard implementations (`UvmDiscard`,
`UvmDiscardLazy`) integrated into the simulated driver, plus the paper's
workloads, baselines and a benchmark per evaluation table and figure.

Quick start::

    from repro import CudaRuntime, KernelSpec, BufferAccess, AccessMode
    from repro.units import MIB

    def program(cuda):
        data = cuda.malloc_managed(512 * MIB, "data")
        yield from cuda.host_write(data)          # init on the CPU
        cuda.prefetch_async(data)                 # H2D, overlapped
        cuda.launch(KernelSpec("consume", [
            BufferAccess(data, AccessMode.READ),
        ], flops=1e9))
        cuda.discard_async(data, mode="eager")    # contents now dead
        yield from cuda.synchronize()

    runtime = CudaRuntime()
    runtime.run(program)
    print(runtime.stats())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

# NumPy is a hard runtime dependency: the residency bitmaps, workload
# data oracles and vectorized kernel hot paths are built on it.  Fail
# at import with an actionable message instead of an AttributeError
# deep inside a simulation when the interpreter has no (or an ancient)
# NumPy.  The floor matches pyproject.toml; 1.22 is the first release
# supporting every Python version this package does (>= 3.9).
try:
    import numpy as _numpy
except ImportError as _exc:  # pragma: no cover - environment-dependent
    raise ImportError(
        "repro requires NumPy (>= 1.22) at runtime; install it with "
        "`pip install 'numpy>=1.22'`"
    ) from _exc
_numpy_version = tuple(
    int(part) for part in _numpy.__version__.split(".")[:2] if part.isdigit()
)
if _numpy_version < (1, 22):  # pragma: no cover - environment-dependent
    raise ImportError(
        f"repro requires NumPy >= 1.22, found {_numpy.__version__}; "
        "upgrade with `pip install --upgrade 'numpy>=1.22'`"
    )
del _numpy, _numpy_version

from repro.access import AccessMode
from repro.core import DataOracle, DiscardAdvisor, UvmDiscard, UvmDiscardLazy
from repro.cuda import (
    BufferAccess,
    CudaRuntime,
    CudaStream,
    GpuSpec,
    HostSpec,
    KernelSpec,
    ManagedBuffer,
    a100_40gb,
    gtx_1070,
    rtx_3080ti,
)
from repro.driver import UvmDriver, UvmDriverConfig
from repro.harness.validation import check_driver_invariants
from repro.instrument.timeline import Timeline
from repro.errors import (
    DataCorruptionError,
    DiscardSemanticsError,
    OutOfMemoryError,
    ReproError,
)
from repro.interconnect import pcie_gen3, pcie_gen4

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "BufferAccess",
    "CudaRuntime",
    "CudaStream",
    "DataOracle",
    "DataCorruptionError",
    "DiscardAdvisor",
    "DiscardSemanticsError",
    "GpuSpec",
    "HostSpec",
    "KernelSpec",
    "ManagedBuffer",
    "OutOfMemoryError",
    "ReproError",
    "UvmDiscard",
    "UvmDiscardLazy",
    "UvmDriver",
    "UvmDriverConfig",
    "Timeline",
    "check_driver_invariants",
    "a100_40gb",
    "gtx_1070",
    "pcie_gen3",
    "pcie_gen4",
    "rtx_3080ti",
    "__version__",
]
