"""Physical memory substrate.

Models each processor's DRAM as a pool of 2 MiB physical chunks
(:class:`~repro.memsim.frames.Frame`), matching how NVIDIA's UVM driver
manages GPU memory (§5.4 of the paper).  The GPU pool is finite and backs
the oversubscription experiments; the CPU pool is large (64 GiB on the
paper's testbed) and acts as swap space for evicted GPU pages.
"""

from repro.memsim.frames import Frame, FrameAllocator
from repro.memsim.zeroing import ZeroFillModel

__all__ = ["Frame", "FrameAllocator", "ZeroFillModel"]
