"""Page-zeroing cost model.

§5.4: "the GPU copy engine can achieve higher bandwidth when zeroing a
larger contiguous GPU memory chunk", analogous to non-temporal zeroing on
CPUs.  We model zero-fill as a bandwidth-limited operation with a fixed
per-command overhead, so zeroing one 2 MiB chunk is far cheaper than 512
separate 4 KiB zeroes — which is why the driver prefers full-block
(2 MiB-aligned) operation throughout.
"""

from __future__ import annotations

from repro.units import BIG_PAGE, GB, us


class ZeroFillModel:
    """Time model for zero-filling physical memory on a processor.

    Args:
        bandwidth: sustained zeroing bandwidth in bytes/second for large
            contiguous chunks (defaults to 500 GB/s, a fraction of a
            3080 Ti-class local bandwidth).
        command_overhead: fixed per-zeroing-command setup time in seconds.
    """

    def __init__(
        self,
        bandwidth: float = 500 * GB,
        command_overhead: float = us(1.5),
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if command_overhead < 0:
            raise ValueError(f"negative overhead: {command_overhead}")
        self.bandwidth = bandwidth
        self.command_overhead = command_overhead

    def zero_time(self, nbytes: int, chunk: int = BIG_PAGE) -> float:
        """Seconds to zero ``nbytes`` issued in ``chunk``-sized commands."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        if nbytes == 0:
            return 0.0
        commands = -(-nbytes // chunk)  # ceil division
        return commands * self.command_overhead + nbytes / self.bandwidth

    def block_zero_time(self) -> float:
        """Seconds to zero one full 2 MiB block (the common driver path)."""
        return self.zero_time(BIG_PAGE, BIG_PAGE)
