"""Physical frames and per-processor frame allocators.

A :class:`Frame` is one 2 MiB physical chunk — the unit in which NVIDIA's
UVM driver allocates, zeroes, maps and evicts GPU memory (§5.4).  The
:class:`FrameAllocator` hands out frames until the processor's capacity is
exhausted; the UVM driver layers its eviction machinery on top, while the
No-UVM baseline surfaces exhaustion directly as
:class:`~repro.errors.OutOfMemoryError` (the paper's Listing 4 failure
mode).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import OutOfMemoryError, SimulationError
from repro.units import BIG_PAGE


class Frame:
    """One 2 MiB physical chunk on a specific processor.

    Attributes:
        owner: processor identifier the frame belongs to (e.g. ``"gpu0"``).
        index: allocator-unique index, stable for the frame's lifetime.
        prepared: whether every 4 KiB page of the frame has been zeroed or
            migrated over since allocation.  §5.7: discarded frames cannot
            be assumed prepared, and unprepared frames must be re-zeroed
            before re-use.
    """

    __slots__ = ("owner", "index", "prepared", "_allocated")

    def __init__(self, owner: str, index: int) -> None:
        self.owner = owner
        self.index = index
        self.prepared = False
        self._allocated = True

    @property
    def allocated(self) -> bool:
        return self._allocated

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alloc" if self._allocated else "free"
        return f"<Frame {self.owner}#{self.index} {state} prepared={self.prepared}>"


class FrameAllocator:
    """Allocates 2 MiB :class:`Frame` objects from a fixed-size pool.

    The allocator itself never evicts; when it is out of frames it raises
    :class:`OutOfMemoryError` and leaves recovery to the caller (the UVM
    driver's eviction process, or nothing in the No-UVM baseline).
    """

    def __init__(self, owner: str, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity: {capacity_bytes}")
        self.owner = owner
        self.capacity_bytes = capacity_bytes
        self.capacity_frames = capacity_bytes // BIG_PAGE
        self._free = self.capacity_frames
        self._next_index = itertools.count()
        self._allocated_frames = 0
        self.retired_frames = 0
        #: Frames currently held by :meth:`reserve` (the oversubscription
        #: occupant / co-tenant allocations), distinguishable from ECC
        #: retirements so reservations can be audited and given back.
        self.reserved_frames = 0

    @property
    def free_frames(self) -> int:
        """Frames currently available without eviction."""
        return self._free

    @property
    def used_frames(self) -> int:
        return self.capacity_frames - self._free

    @property
    def used_bytes(self) -> int:
        return self.used_frames * BIG_PAGE

    @property
    def free_bytes(self) -> int:
        return self._free * BIG_PAGE

    def allocate(self) -> Frame:
        """Take one frame from the pool.

        Raises:
            OutOfMemoryError: when the pool is exhausted.
        """
        if self._free <= 0:
            raise OutOfMemoryError(
                f"{self.owner}: out of physical memory "
                f"({self.capacity_frames} frames of 2 MiB all in use)"
            )
        self._free -= 1
        self._allocated_frames += 1
        return Frame(self.owner, next(self._next_index))

    def free(self, frame: Frame) -> None:
        """Return ``frame`` to the pool."""
        if frame.owner != self.owner:
            raise SimulationError(
                f"frame owned by {frame.owner} freed on {self.owner}"
            )
        if not frame._allocated:
            raise SimulationError(f"double free of {frame!r}")
        frame._allocated = False
        frame.prepared = False
        self._free += 1
        if self._free > self.capacity_frames:
            raise SimulationError(f"{self.owner}: freed more frames than capacity")

    def reserve(self, nframes: int) -> None:
        """Permanently remove ``nframes`` from the pool.

        Used by the oversubscription harness to model the paper's "idle GPU
        program that occupies specific amounts of GPU memory" (§7.1).
        """
        if nframes < 0:
            raise ValueError(f"negative reservation: {nframes}")
        if nframes > self._free:
            raise OutOfMemoryError(
                f"{self.owner}: cannot reserve {nframes} frames, only "
                f"{self._free} free"
            )
        self._free -= nframes
        self.capacity_frames -= nframes
        self.capacity_bytes -= nframes * BIG_PAGE
        self.reserved_frames += nframes

    def retire(self, nframes: int = 1) -> None:
        """Permanently remove ``nframes`` free frames from the pool.

        Models ECC page retirement: a frame that produced uncorrectable
        errors is taken out of service for the remainder of the run.  The
        caller (the UVM driver) must first vacate the frame — migrate or
        reclaim whatever block it backs and :meth:`free` it — so only
        *free* frames can be retired here.  Unlike :meth:`reserve` there
        is no undo, and retirements are tracked separately so inspection
        can distinguish ECC loss from an oversubscription occupant.
        """
        if nframes < 0:
            raise ValueError(f"negative retirement: {nframes}")
        if nframes > self._free:
            raise OutOfMemoryError(
                f"{self.owner}: cannot retire {nframes} frames, only "
                f"{self._free} free"
            )
        self._free -= nframes
        self.capacity_frames -= nframes
        self.capacity_bytes -= nframes * BIG_PAGE
        self.retired_frames += nframes

    def unreserve(self, nframes: int) -> None:
        """Return ``nframes`` previously reserved frames to the pool.

        The `cudaFree` path of explicit device allocations.
        """
        if nframes < 0:
            raise ValueError(f"negative unreservation: {nframes}")
        if nframes > self.reserved_frames:
            raise SimulationError(
                f"{self.owner}: unreserve of {nframes} frames exceeds the "
                f"{self.reserved_frames} currently reserved"
            )
        self.reserved_frames -= nframes
        self._free += nframes
        self.capacity_frames += nframes
        self.capacity_bytes += nframes * BIG_PAGE
